//! Pluggable scheduler policies for iteration-level serving.
//!
//! The continuous-batching engine makes three kinds of decisions beyond
//! the mechanisms themselves (admission gating, chunked prefill, KV
//! swaps), and each is a trait here:
//!
//! * [`AdmissionPolicy`] — in what order the global wait queue is
//!   admitted ([`FcfsAdmission`], [`PriorityAdmission`],
//!   [`ShortestPromptAdmission`], [`DeadlineAdmission`],
//!   [`WidestSubtreeAdmission`]).
//! * [`EvictionPolicy`] — which resident sequence is swapped out under
//!   KV pressure ([`LowestPriorityYoungest`], [`LargestKv`],
//!   [`LeastProgress`]).
//! * [`ReadmissionPolicy`] — in what order swapped sequences re-enter
//!   ([`FifoReadmission`], [`DeadlineReadmission`]).
//! * [`MigrationPolicy`] — which decode replica receives a sequence
//!   migrating off a prefill replica in a disaggregated cluster
//!   ([`LeastLoadedMigration`], [`FreestKvMigration`]); installed with
//!   [`ServingSim::migration`](super::ServingSim::migration) rather
//!   than on the bundle, since it only exists once roles do.
//!
//! A [`SchedulerPolicy`] bundles one of each and is installed with
//! [`ServingSim::policy`](super::ServingSim::policy). Policies are
//! **comparators**, not queue owners: the engine presents candidate
//! views ([`QueuedRequest`] / [`SeqView`]) and takes the policy-minimal
//! element, so every policy automatically inherits the engine's
//! invariants — head-of-line blocking happens in *policy order*,
//! prefilling and lone sequences are never evicted, and a preempted
//! sequence always completes. Comparators must be **deterministic pure
//! functions** of their arguments (simulations are seeded and
//! reproducible; a stateful or randomized comparator would break
//! [`ServingSim::sustainable_rate`](super::ServingSim::sustainable_rate)
//! bisection too). Ties are broken by the engine in favor of the
//! earlier candidate, so total orders are not required — but every
//! built-in ends its key chain with the arrival index to stay
//! unambiguous.
//!
//! # Adding a policy
//!
//! Implement the trait over the view struct and install it:
//!
//! ```
//! use ianus_core::serving::policy::{EvictionPolicy, SeqView};
//! use ianus_core::serving::{Scheduling, SchedulerPolicy, ServingConfig, ServingSim};
//! use ianus_core::{IanusSystem, SystemConfig};
//! use ianus_model::ModelConfig;
//! use std::cmp::Ordering;
//!
//! /// Evict the *oldest* decoding sequence (whatever its tier).
//! struct OldestFirst;
//!
//! impl EvictionPolicy for OldestFirst {
//!     fn name(&self) -> &'static str {
//!         "oldest-first"
//!     }
//!     fn compare(&self, a: &SeqView, b: &SeqView) -> Ordering {
//!         a.arrival_idx.cmp(&b.arrival_idx)
//!     }
//! }
//!
//! let report = ServingSim::new(ServingConfig::interactive(8.0, 80))
//!     .replica(IanusSystem::new(SystemConfig::ianus()))
//!     .scheduling(Scheduling::IterationLevel {
//!         max_batch: 8,
//!         prefill_chunk: None,
//!         preempt: true,
//!     })
//!     .policy(SchedulerPolicy::default().with_eviction(OldestFirst))
//!     .run(&ModelConfig::gpt2_m());
//! assert_eq!(report.completed, 80);
//! ```

use super::Priority;
use ianus_model::RequestShape;
use std::cmp::Ordering;

/// A waiting (not yet admitted) request, as the [`AdmissionPolicy`]
/// sees it. Times are simulation seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// The request shape.
    pub shape: RequestShape,
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Global arrival index (FCFS order; unique).
    pub arrival_idx: u64,
    /// Scheduling tier of the request's class.
    pub priority: Priority,
    /// TTFT deadline in seconds (`arrival + slo.ttft`), when the
    /// request's class carries an [`Slo`](super::Slo). For a workflow
    /// node with no per-request SLO this is the workflow deadline, so
    /// [`DeadlineAdmission`] is deadline-aware in workflow mode too.
    pub deadline: Option<f64>,
    /// End-to-end deadline of the workflow instance this request
    /// belongs to, in absolute seconds (`None` for flat-mix requests
    /// and deadline-free workflows). See
    /// [`workflow`](super::workflow).
    pub workflow_deadline: Option<f64>,
    /// How many downstream workflow nodes this request (transitively)
    /// unblocks — 0 for flat-mix requests and leaf nodes.
    /// [`WidestSubtreeAdmission`] orders by this.
    pub blocked_descendants: u32,
    /// Tenant index under multi-tenant arrivals
    /// ([`ArrivalSpec::MultiTenant`](super::ArrivalSpec)) — 0 for every
    /// single-tenant process. Policies may use it for per-tenant
    /// ordering; the built-in bundles ignore it.
    pub tenant: u32,
}

/// A resident or swapped sequence, as the [`EvictionPolicy`] and
/// [`ReadmissionPolicy`] see it. Times are simulation seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqView {
    /// The request shape.
    pub shape: RequestShape,
    /// Arrival time in seconds.
    pub arrival: f64,
    /// Global arrival index (FCFS order; unique — the default
    /// eviction's "youngest" is the largest index).
    pub arrival_idx: u64,
    /// Scheduling tier of the request's class.
    pub priority: Priority,
    /// TTFT deadline in seconds (`arrival + slo.ttft`), when the
    /// request's class carries an [`Slo`](super::Slo).
    pub deadline: Option<f64>,
    /// Tokens currently in the sequence's KV cache — what a swap-out
    /// would have to move, and what eviction frees.
    pub kv_tokens: u64,
    /// Prompt tokens prefilled so far.
    pub prefilled: u64,
    /// Output tokens generated so far (completed decode steps).
    pub generated: u64,
    /// Decode steps left.
    pub remaining: u64,
    /// KV swap-outs suffered so far.
    pub preemptions: u32,
    /// Monotone swap-out sequence number (eviction order across the
    /// replica); 0 until first preempted. [`FifoReadmission`] orders by
    /// this.
    pub swap_epoch: u64,
    /// *One-way* KV transfer time for this sequence's current KV over
    /// the replica's host link, in seconds — half the price of evicting
    /// it by swap (charged again at swap-in). `f64::INFINITY` when the
    /// replica's host pool cannot take the bytes right now, so
    /// cost-aware policies see a full pool as "swap unavailable".
    pub swap_secs: f64,
    /// Estimated time to rebuild this sequence's current KV by
    /// re-prefilling its whole context, in seconds — the price of
    /// evicting it by recompute (grid-interpolated from the replica's
    /// prefill costs). Under paged KV ([`crate::serving::kv`]) only the
    /// *unshared* context is priced — shared prefix blocks stay
    /// device-resident across eviction and are never rebuilt.
    pub recompute_secs: f64,
    /// KV blocks the sequence currently maps when the replica runs the
    /// paged allocator ([`crate::serving::kv`]); 0 in contiguous mode.
    /// Eviction frees the *unshared* part of these.
    pub kv_blocks: u64,
    /// Tokens of this sequence's context held in blocks shared with the
    /// prefix cache (0 in contiguous mode, or when the class has no
    /// shared prefix). Shared blocks stay device-resident across
    /// eviction, so evicting this sequence frees only
    /// `kv_tokens − shared_tokens` worth of blocks — what
    /// [`CheapestEviction`] normalizes by.
    pub shared_tokens: u64,
    /// Expected delay before an evicted sequence would be re-admitted,
    /// in seconds: the replica's readmission-queue depth times its mean
    /// iteration time. Part of [`eviction_cost_secs`](Self::eviction_cost_secs),
    /// so cost-aware policies stop treating a swap behind a deep queue
    /// as free.
    pub readmit_delay_secs: f64,
    /// End-to-end deadline of the workflow instance this sequence
    /// belongs to, in absolute seconds (`None` for flat-mix requests
    /// and deadline-free workflows).
    pub workflow_deadline: Option<f64>,
    /// How many downstream workflow nodes this sequence (transitively)
    /// unblocks — 0 for flat-mix requests and leaf nodes. Eviction
    /// policies can use it to keep wide-subtree sequences resident.
    pub blocked_descendants: u32,
}

impl SeqView {
    /// The cost of evicting this sequence, in seconds: KV transfer both
    /// ways, or one re-prefill of the current context — whichever is
    /// less (a full host pool makes the swap side infinite) — plus the
    /// expected re-admission delay
    /// ([`readmit_delay_secs`](Self::readmit_delay_secs)): a victim
    /// behind a deep swap queue dwells out of the batch for that long
    /// regardless of how it leaves the device. This is the cost
    /// [`CheapestEviction`] normalizes by freed KV. (The engine's
    /// `cheapest` eviction *mechanism* compares the raw
    /// `2 × swap` vs `recompute` legs — the delay is common to both, so
    /// it cannot change which mechanism wins.)
    pub fn eviction_cost_secs(&self) -> f64 {
        (2.0 * self.swap_secs).min(self.recompute_secs) + self.readmit_delay_secs
    }

    /// KV tokens an eviction would actually free: the whole context in
    /// contiguous mode, the unshared part under paged prefix sharing.
    pub fn freed_tokens(&self) -> u64 {
        self.kv_tokens.saturating_sub(self.shared_tokens)
    }
}

/// Orders the deadline option with `None` last, for the deadline-aware
/// policies.
fn deadline_cmp(a: Option<f64>, b: Option<f64>) -> Ordering {
    a.unwrap_or(f64::INFINITY)
        .total_cmp(&b.unwrap_or(f64::INFINITY))
}

/// Orders the wait queue of an iteration-level replica.
///
/// At every iteration boundary the engine considers the requests that
/// have already arrived and admits the policy-minimal one first
/// (smaller per [`compare`](Self::compare) = admitted earlier). If that
/// request does not fit the KV gate, admission stops for this boundary
/// — head-of-line blocking is in *policy order*, so a policy that
/// front-loads large requests also decides who blocks.
pub trait AdmissionPolicy {
    /// Short stable identifier (report/CLI label).
    fn name(&self) -> &'static str;

    /// `Less` ⇒ `a` is admitted before `b`.
    fn compare(&self, a: &QueuedRequest, b: &QueuedRequest) -> Ordering;
}

/// First come, first served — admission in arrival order. The default,
/// and the only order under which a seed denotes the same trace as the
/// historical hard-wired scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsAdmission;

impl AdmissionPolicy for FcfsAdmission {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn compare(&self, a: &QueuedRequest, b: &QueuedRequest) -> Ordering {
        a.arrival_idx.cmp(&b.arrival_idx)
    }
}

/// [`Priority::Interactive`] requests are admitted before
/// [`Priority::Batch`] ones; FCFS within a tier.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityAdmission;

impl AdmissionPolicy for PriorityAdmission {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn compare(&self, a: &QueuedRequest, b: &QueuedRequest) -> Ordering {
        // Interactive > Batch in the Priority order; admit the greater
        // tier first.
        b.priority
            .cmp(&a.priority)
            .then(a.arrival_idx.cmp(&b.arrival_idx))
    }
}

/// Shortest prompt first — the classic SJF-flavored order for
/// prefill-bound queues; FCFS among equal prompts.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestPromptAdmission;

impl AdmissionPolicy for ShortestPromptAdmission {
    fn name(&self) -> &'static str {
        "shortest-prompt"
    }

    fn compare(&self, a: &QueuedRequest, b: &QueuedRequest) -> Ordering {
        a.shape
            .input
            .cmp(&b.shape.input)
            .then(a.arrival_idx.cmp(&b.arrival_idx))
    }
}

/// Earliest deadline first over the TTFT deadlines: requests whose
/// class carries an [`Slo`](super::Slo) are ordered by
/// `arrival + slo.ttft`; requests without a deadline go last, FCFS
/// among themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlineAdmission;

impl AdmissionPolicy for DeadlineAdmission {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn compare(&self, a: &QueuedRequest, b: &QueuedRequest) -> Ordering {
        deadline_cmp(a.deadline, b.deadline).then(a.arrival_idx.cmp(&b.arrival_idx))
    }
}

/// Workflow-aware admission: drain in-flight DAGs before opening new
/// ones, and within an instance admit the node that (transitively)
/// unblocks the most downstream workflow nodes
/// ([`QueuedRequest::blocked_descendants`]) first. Instances are
/// ordered by workflow deadline (a proxy for instance age under a
/// uniform template; `None` sorts last), so a freshly arrived root —
/// whose subtree is always widest — cannot starve an older instance's
/// tools and join out of the batch. A *width-primary* order inverts
/// under backlog: it keeps admitting new planners while released
/// children rot at the tail, which is exactly the p99 regression this
/// key order avoids. Degrades to exact FCFS on flat mixes (every flat
/// request has zero descendants and no workflow deadline).
#[derive(Debug, Clone, Copy, Default)]
pub struct WidestSubtreeAdmission;

impl AdmissionPolicy for WidestSubtreeAdmission {
    fn name(&self) -> &'static str {
        "widest-subtree"
    }

    fn compare(&self, a: &QueuedRequest, b: &QueuedRequest) -> Ordering {
        deadline_cmp(a.workflow_deadline, b.workflow_deadline)
            .then(b.blocked_descendants.cmp(&a.blocked_descendants))
            .then(a.arrival_idx.cmp(&b.arrival_idx))
    }
}

/// Selects the victim when KV pressure forces a swap-out.
///
/// The engine filters the candidates first — only *decoding* sequences
/// are offered (a prefilling sequence's partially built KV would be
/// wasted work), and it never evicts a lone sequence (which could then
/// never make progress) — then swaps out the policy-minimal candidate,
/// repeating until the projected batch fits. Those liveness guards
/// belong to the engine, not the policy: every policy inherits
/// "preempted sequences always complete" for free.
pub trait EvictionPolicy {
    /// Short stable identifier (report/CLI label).
    fn name(&self) -> &'static str;

    /// `Less` ⇒ `a` is evicted before `b`.
    fn compare(&self, a: &SeqView, b: &SeqView) -> Ordering;
}

/// Evict the lowest-[`Priority`] tier first, the youngest sequence
/// (largest arrival index) within a tier — batch work pays for
/// overcommit before interactive work, and the sequence with the least
/// sunk residency pays first within the tier. The default.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowestPriorityYoungest;

impl EvictionPolicy for LowestPriorityYoungest {
    fn name(&self) -> &'static str {
        "lowest-priority-youngest"
    }

    fn compare(&self, a: &SeqView, b: &SeqView) -> Ordering {
        a.priority
            .cmp(&b.priority)
            .then(b.arrival_idx.cmp(&a.arrival_idx))
    }
}

/// Evict the sequence holding the most KV — one swap frees the most
/// memory (fewest victims per pressure event), at the price of paying
/// the largest transfer and discarding the longest context from
/// residency. Ties fall back to the default order.
#[derive(Debug, Clone, Copy, Default)]
pub struct LargestKv;

impl EvictionPolicy for LargestKv {
    fn name(&self) -> &'static str {
        "largest-kv"
    }

    fn compare(&self, a: &SeqView, b: &SeqView) -> Ordering {
        b.kv_tokens
            .cmp(&a.kv_tokens)
            .then(LowestPriorityYoungest.compare(a, b))
    }
}

/// Evict the sequence that has generated the fewest output tokens —
/// the least completed work is lost (and, symmetrically, the victim has
/// the most decode left, so its swap dwell hurts the least relative to
/// its remaining runtime). Ties fall back to the default order.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastProgress;

impl EvictionPolicy for LeastProgress {
    fn name(&self) -> &'static str {
        "least-progress"
    }

    fn compare(&self, a: &SeqView, b: &SeqView) -> Ordering {
        a.generated
            .cmp(&b.generated)
            .then(LowestPriorityYoungest.compare(a, b))
    }
}

/// Evict the sequence with the lowest *eviction cost per KV token
/// freed* — [`SeqView::eviction_cost_secs`] (KV transfer both ways, or
/// one re-prefill of the context, whichever is cheaper — a full host
/// pool prices the swap side infinite — plus the expected re-admission
/// delay behind the replica's swap queue) divided by
/// [`freed_tokens`](SeqView::freed_tokens). The ROADMAP's cost-aware
/// victim: where [`LargestKv`] maximizes freed memory regardless of
/// what the eviction costs, this pays the least per byte relieved —
/// under a tight host pool it shifts victims away from huge contexts
/// whose forced recompute is superlinearly expensive; under a deep swap
/// queue the fixed dwell cost amortizes over more freed KV, shifting
/// victims toward *larger* unshared contexts; and under paged prefix
/// sharing it knows a mostly-shared sequence frees almost nothing.
/// Ties fall back to the default order.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheapestEviction;

impl EvictionPolicy for CheapestEviction {
    fn name(&self) -> &'static str {
        "cheapest"
    }

    fn compare(&self, a: &SeqView, b: &SeqView) -> Ordering {
        let per_token = |s: &SeqView| s.eviction_cost_secs() / s.freed_tokens().max(1) as f64;
        per_token(a)
            .total_cmp(&per_token(b))
            .then(LowestPriorityYoungest.compare(a, b))
    }
}

/// Orders the swap queue: which preempted sequence is offered a freed
/// slot first.
///
/// Swapped sequences are always offered slots *before* new admissions
/// at every boundary (they are older than anything still queued), and
/// when a replica's batch empties, the policy-minimal one re-enters
/// unconditionally — the liveness guarantee, again owned by the engine.
pub trait ReadmissionPolicy {
    /// Short stable identifier (report/CLI label).
    fn name(&self) -> &'static str;

    /// `Less` ⇒ `a` re-enters before `b`.
    fn compare(&self, a: &SeqView, b: &SeqView) -> Ordering;
}

/// Re-admit in swap-out order (first evicted, first restored). The
/// default.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoReadmission;

impl ReadmissionPolicy for FifoReadmission {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn compare(&self, a: &SeqView, b: &SeqView) -> Ordering {
        a.swap_epoch
            .cmp(&b.swap_epoch)
            .then(a.arrival_idx.cmp(&b.arrival_idx))
    }
}

/// Deadline-aware re-admission: the sequence whose request carries the
/// earliest TTFT deadline (`arrival + slo.ttft`) re-enters first —
/// latency-critical work spends the least time swapped out. Sequences
/// without a deadline go last, in swap-out order.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlineReadmission;

impl ReadmissionPolicy for DeadlineReadmission {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn compare(&self, a: &SeqView, b: &SeqView) -> Ordering {
        deadline_cmp(a.deadline, b.deadline).then(FifoReadmission.compare(a, b))
    }
}

/// A candidate decode replica for a prefill→decode KV migration, as
/// the [`MigrationPolicy`] sees it at handoff time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationTarget {
    /// Cluster index of the candidate decode replica.
    pub replica: usize,
    /// Sequences currently resident (running batch plus swap-ins in
    /// flight) on the candidate.
    pub batch_len: usize,
    /// Migrations already in flight toward the candidate.
    pub inbound: usize,
    /// How long the candidate's inbound (H2D) DMA lane stays busy from
    /// the source's *now*, in seconds (0 when the lane is free) — the
    /// queueing delay a migration issued now would see before its
    /// inbound leg starts.
    pub lane_busy_secs: f64,
    /// Free KV blocks on the candidate when it runs the paged
    /// allocator ([`crate::serving::kv`]); `None` in contiguous mode.
    pub kv_free_blocks: Option<u64>,
}

/// Which decode replica receives a sequence when its prefill completes
/// on a [`ReplicaRole::PrefillOnly`](super::ReplicaRole::PrefillOnly)
/// replica.
///
/// Like the other policy traits, a migration policy is a pure
/// comparator over candidate views: the engine offers every
/// [`ReplicaRole::DecodeOnly`](super::ReplicaRole::DecodeOnly) replica
/// as a [`MigrationTarget`] and takes the policy-minimal one. Ties
/// break toward the lower replica index, and comparators must be
/// deterministic (seeded simulations, and the event-driven and
/// step-scan cores must pick identical destinations).
pub trait MigrationPolicy {
    /// Short stable identifier (report/CLI label).
    fn name(&self) -> &'static str;
    /// Total-order comparison: `Less` means `a` is the better
    /// destination.
    fn compare(&self, a: &MigrationTarget, b: &MigrationTarget) -> Ordering;
}

/// Default migration policy: the decode replica with the fewest
/// resident-plus-inbound sequences wins; among equals, the one whose
/// inbound DMA lane frees earliest, then the lowest index.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoadedMigration;

impl MigrationPolicy for LeastLoadedMigration {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn compare(&self, a: &MigrationTarget, b: &MigrationTarget) -> Ordering {
        (a.batch_len + a.inbound)
            .cmp(&(b.batch_len + b.inbound))
            .then(a.lane_busy_secs.total_cmp(&b.lane_busy_secs))
            .then(a.replica.cmp(&b.replica))
    }
}

/// KV-headroom migration: the decode replica with the most free paged
/// KV blocks wins (replicas running contiguous accounting report
/// `None` and go last), falling back to [`LeastLoadedMigration`] order
/// among equals. Useful when decode replicas differ in memory, not
/// speed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FreestKvMigration;

impl MigrationPolicy for FreestKvMigration {
    fn name(&self) -> &'static str {
        "freest-kv"
    }

    fn compare(&self, a: &MigrationTarget, b: &MigrationTarget) -> Ordering {
        // Most free blocks first; None (contiguous mode) last. Option's
        // derived order puts None below every Some, so comparing b's
        // key against a's yields exactly that descending order.
        b.kv_free_blocks
            .cmp(&a.kv_free_blocks)
            .then(LeastLoadedMigration.compare(a, b))
    }
}

/// *How* a chosen victim's KV leaves the device — the mechanism the
/// engine applies after the [`EvictionPolicy`] has picked *who* pays.
///
/// Whatever the mechanism, a swap-out that would overflow the
/// replica's finite host pool
/// ([`Backend::host_kv_bytes`](crate::backend::Backend::host_kv_bytes))
/// falls back to [`Recompute`](Self::Recompute) — the pool is a hard
/// capacity, not a preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionMechanism {
    /// Swap the KV to host memory (charged
    /// [`kv_transfer_time`](crate::backend::Backend::kv_transfer_time)
    /// each way, host pool debited while swapped). The default, and the
    /// historical behavior.
    #[default]
    Swap,
    /// Drop the KV and re-prefill the whole context on re-admission
    /// (priced by
    /// [`prefill_time`](crate::backend::Backend::prefill_time), chunked
    /// like any prompt when chunking is on). Uses no host memory.
    Recompute,
    /// Per eviction, whichever is cheaper for this victim: KV transfer
    /// both ways vs one re-prefill of the context
    /// ([`SeqView::eviction_cost_secs`]).
    Cheapest,
}

impl EvictionMechanism {
    /// Short stable identifier (report/CLI label).
    pub fn name(&self) -> &'static str {
        match self {
            EvictionMechanism::Swap => "swap",
            EvictionMechanism::Recompute => "recompute",
            EvictionMechanism::Cheapest => "cheapest",
        }
    }
}

/// One admission + eviction + re-admission bundle, installed with
/// [`ServingSim::policy`](super::ServingSim::policy).
///
/// [`SchedulerPolicy::default`] is the historical hard-wired scheduler
/// — FCFS admission, lowest-priority/youngest eviction, FIFO
/// re-admission, swap-based eviction — and reproduces its schedules
/// bit-identically, so installing a bundle is never a silent behavior
/// change unless a non-default member is chosen.
///
/// Members are shared [`Arc`](std::sync::Arc)s (policies are stateless
/// comparators), so a bundle clones cheaply — which is what lets
/// [`ServingSim::try_clone`](super::ServingSim::try_clone) stamp out
/// engines for parallel rate sweeps.
#[derive(Clone)]
pub struct SchedulerPolicy {
    /// Wait-queue order.
    pub admission: std::sync::Arc<dyn AdmissionPolicy + Send + Sync>,
    /// Victim selection under KV pressure.
    pub eviction: std::sync::Arc<dyn EvictionPolicy + Send + Sync>,
    /// Swap-queue order.
    pub readmission: std::sync::Arc<dyn ReadmissionPolicy + Send + Sync>,
    /// How a victim's KV leaves the device (swap vs recompute).
    pub mechanism: EvictionMechanism,
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        SchedulerPolicy {
            admission: std::sync::Arc::new(FcfsAdmission),
            eviction: std::sync::Arc::new(LowestPriorityYoungest),
            readmission: std::sync::Arc::new(FifoReadmission),
            mechanism: EvictionMechanism::Swap,
        }
    }
}

impl SchedulerPolicy {
    /// Replaces the admission policy (builder style).
    pub fn with_admission(
        mut self,
        admission: impl AdmissionPolicy + Send + Sync + 'static,
    ) -> Self {
        self.admission = std::sync::Arc::new(admission);
        self
    }

    /// Replaces the eviction policy (builder style).
    pub fn with_eviction(mut self, eviction: impl EvictionPolicy + Send + Sync + 'static) -> Self {
        self.eviction = std::sync::Arc::new(eviction);
        self
    }

    /// Replaces the re-admission policy (builder style).
    pub fn with_readmission(
        mut self,
        readmission: impl ReadmissionPolicy + Send + Sync + 'static,
    ) -> Self {
        self.readmission = std::sync::Arc::new(readmission);
        self
    }

    /// Replaces the eviction mechanism (builder style).
    pub fn with_mechanism(mut self, mechanism: EvictionMechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// `admission+eviction+readmission` label, for report headers and
    /// sweep tables; a non-default eviction mechanism is appended as a
    /// fourth `+segment`.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}+{}+{}",
            self.admission.name(),
            self.eviction.name(),
            self.readmission.name()
        );
        if self.mechanism != EvictionMechanism::Swap {
            label.push('+');
            label.push_str(self.mechanism.name());
        }
        label
    }
}

impl std::fmt::Debug for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerPolicy")
            .field("admission", &self.admission.name())
            .field("eviction", &self.eviction.name())
            .field("readmission", &self.readmission.name())
            .field("mechanism", &self.mechanism.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(idx: u64, input: u64, priority: Priority, deadline: Option<f64>) -> QueuedRequest {
        QueuedRequest {
            shape: RequestShape::new(input, 8),
            arrival: idx as f64,
            arrival_idx: idx,
            priority,
            deadline,
            workflow_deadline: None,
            blocked_descendants: 0,
            tenant: 0,
        }
    }

    fn seq(idx: u64, priority: Priority, kv: u64, generated: u64, epoch: u64) -> SeqView {
        SeqView {
            shape: RequestShape::new(128, 64),
            arrival: idx as f64,
            arrival_idx: idx,
            priority,
            deadline: None,
            kv_tokens: kv,
            prefilled: 128,
            generated,
            remaining: 64 - generated,
            preemptions: 0,
            swap_epoch: epoch,
            swap_secs: kv as f64 * 1e-5,
            recompute_secs: kv as f64 * 1e-4,
            kv_blocks: 0,
            shared_tokens: 0,
            readmit_delay_secs: 0.0,
            workflow_deadline: None,
            blocked_descendants: 0,
        }
    }

    #[test]
    fn admission_orders() {
        let a = req(0, 512, Priority::Batch, Some(9.0));
        let b = req(1, 64, Priority::Interactive, Some(2.0));
        let c = req(2, 128, Priority::Interactive, None);
        assert_eq!(FcfsAdmission.compare(&a, &b), Ordering::Less);
        assert_eq!(PriorityAdmission.compare(&b, &a), Ordering::Less);
        assert_eq!(PriorityAdmission.compare(&b, &c), Ordering::Less);
        assert_eq!(ShortestPromptAdmission.compare(&b, &a), Ordering::Less);
        assert_eq!(DeadlineAdmission.compare(&b, &a), Ordering::Less);
        // No deadline sorts last.
        assert_eq!(DeadlineAdmission.compare(&a, &c), Ordering::Less);
    }

    #[test]
    fn widest_subtree_order() {
        // Same instance (same workflow deadline): width decides.
        let mut narrow = req(0, 64, Priority::Interactive, None);
        let mut wide = req(1, 64, Priority::Interactive, None);
        wide.blocked_descendants = 4;
        narrow.blocked_descendants = 1;
        assert_eq!(
            WidestSubtreeAdmission.compare(&wide, &narrow),
            Ordering::Less
        );
        // The older instance (earlier workflow deadline) wins even
        // against a wider node of a younger one: in-flight DAGs drain
        // before new roots open.
        narrow.blocked_descendants = 1;
        narrow.workflow_deadline = Some(5.0);
        wide.workflow_deadline = Some(9.0);
        assert_eq!(
            WidestSubtreeAdmission.compare(&narrow, &wide),
            Ordering::Less
        );
        // Flat requests (zero width, no workflow deadline) are FCFS.
        let flat_a = req(0, 64, Priority::Interactive, None);
        let flat_b = req(1, 64, Priority::Interactive, None);
        assert_eq!(
            WidestSubtreeAdmission.compare(&flat_a, &flat_b),
            FcfsAdmission.compare(&flat_a, &flat_b)
        );
    }

    #[test]
    fn eviction_orders() {
        let batch_young = seq(9, Priority::Batch, 100, 10, 0);
        let batch_old = seq(1, Priority::Batch, 600, 40, 0);
        let inter_big = seq(5, Priority::Interactive, 900, 2, 0);
        // Default: tier first, then youngest.
        assert_eq!(
            LowestPriorityYoungest.compare(&batch_young, &batch_old),
            Ordering::Less
        );
        assert_eq!(
            LowestPriorityYoungest.compare(&batch_old, &inter_big),
            Ordering::Less
        );
        // Largest KV ignores tier until the tiebreak.
        assert_eq!(LargestKv.compare(&inter_big, &batch_old), Ordering::Less);
        // Least progress evicts the sequence with the fewest tokens out.
        assert_eq!(
            LeastProgress.compare(&inter_big, &batch_young),
            Ordering::Less
        );
    }

    #[test]
    fn readmission_orders() {
        let mut first = seq(3, Priority::Batch, 100, 5, 1);
        let mut second = seq(2, Priority::Interactive, 100, 5, 2);
        assert_eq!(FifoReadmission.compare(&first, &second), Ordering::Less);
        first.deadline = None;
        second.deadline = Some(4.0);
        assert_eq!(DeadlineReadmission.compare(&second, &first), Ordering::Less);
    }

    #[test]
    fn bundle_labels() {
        assert_eq!(
            SchedulerPolicy::default().label(),
            "fcfs+lowest-priority-youngest+fifo"
        );
        let custom = SchedulerPolicy::default()
            .with_admission(DeadlineAdmission)
            .with_eviction(LargestKv)
            .with_readmission(DeadlineReadmission);
        assert_eq!(custom.label(), "edf+largest-kv+deadline");
        assert!(format!("{custom:?}").contains("largest-kv"));
        let mech = SchedulerPolicy::default().with_mechanism(EvictionMechanism::Cheapest);
        assert_eq!(mech.label(), "fcfs+lowest-priority-youngest+fifo+cheapest");
        assert!(format!("{mech:?}").contains("cheapest"));
    }

    #[test]
    fn cheapest_eviction_orders_by_cost_per_token() {
        // With swap at 1e-5 s/token and recompute at 1e-4 s/token, the
        // per-token eviction cost is a constant 2e-5 s — the tiebreak
        // (default order) decides.
        let a = seq(1, Priority::Batch, 600, 40, 0);
        let b = seq(9, Priority::Batch, 100, 10, 0);
        assert_eq!(CheapestEviction.compare(&b, &a), Ordering::Less);
        // A full host pool makes the swap side infinite: the victim
        // whose recompute-per-token is cheaper goes first.
        let mut big = seq(1, Priority::Batch, 1000, 40, 0);
        let mut small = seq(9, Priority::Batch, 100, 10, 0);
        big.swap_secs = f64::INFINITY;
        small.swap_secs = f64::INFINITY;
        big.recompute_secs = 0.5; // 5e-4 s/token: superlinear prefill
        small.recompute_secs = 0.01; // 1e-4 s/token
        assert_eq!(CheapestEviction.compare(&small, &big), Ordering::Less);
        assert_eq!(big.eviction_cost_secs(), 0.5);
    }

    #[test]
    fn readmit_delay_shifts_cheapest_toward_larger_victims() {
        // The ROADMAP cost-model fix, directionally: with per-token
        // transfer costs equal (2e-5 s/token for both victims), a swap
        // behind an *empty* queue ties on cost and the default-order
        // tiebreak evicts the lower tier / youngest — the small victim.
        let big = seq(1, Priority::Batch, 600, 40, 0);
        let small = seq(9, Priority::Batch, 100, 10, 0);
        assert_eq!(CheapestEviction.compare(&small, &big), Ordering::Less);
        // Behind a deep readmission queue the dwell is a *fixed* cost
        // per eviction: amortized over freed KV it favors the victim
        // that frees more, so the 600-token sequence now goes first —
        // a swap behind a deep queue is no longer "free".
        let delay = 0.5; // queue depth × mean iteration time, seconds
        let mut big_q = big;
        let mut small_q = small;
        big_q.readmit_delay_secs = delay;
        small_q.readmit_delay_secs = delay;
        assert_eq!(CheapestEviction.compare(&big_q, &small_q), Ordering::Less);
        assert!(big_q.eviction_cost_secs() > big.eviction_cost_secs());
    }

    #[test]
    fn shared_prefix_shrinks_what_eviction_frees() {
        // Paged prefix sharing: a mostly-shared sequence frees almost
        // nothing, so CheapestEviction must stop seeing it as a cheap
        // big win. Same raw KV, same costs — but `shared` keeps only 64
        // of its 600 tokens evictable.
        let unshared = seq(1, Priority::Batch, 600, 40, 0);
        let mut shared = seq(9, Priority::Batch, 600, 40, 0);
        shared.shared_tokens = 536;
        shared.kv_blocks = 38;
        assert_eq!(shared.freed_tokens(), 64);
        assert_eq!(unshared.freed_tokens(), 600);
        assert_eq!(CheapestEviction.compare(&unshared, &shared), Ordering::Less);
    }

    fn target(replica: usize, batch: usize, inbound: usize, lane: f64) -> MigrationTarget {
        MigrationTarget {
            replica,
            batch_len: batch,
            inbound,
            lane_busy_secs: lane,
            kv_free_blocks: None,
        }
    }

    #[test]
    fn migration_orders() {
        // Least-loaded counts in-flight migrations as load.
        let idle = target(2, 1, 0, 0.0);
        let loaded = target(0, 1, 3, 0.0);
        assert_eq!(LeastLoadedMigration.compare(&idle, &loaded), Ordering::Less);
        // Equal load: the freer inbound lane wins, then the lower index.
        let lane_free = target(1, 2, 0, 0.0);
        let lane_busy = target(0, 2, 0, 0.5);
        assert_eq!(
            LeastLoadedMigration.compare(&lane_free, &lane_busy),
            Ordering::Less
        );
        assert_eq!(
            LeastLoadedMigration.compare(&target(0, 2, 0, 0.5), &target(1, 2, 0, 0.5)),
            Ordering::Less
        );
        // Freest-KV: most free blocks first, contiguous (None) last.
        let mut roomy = target(1, 5, 0, 0.0);
        roomy.kv_free_blocks = Some(100);
        let mut tight = target(0, 0, 0, 0.0);
        tight.kv_free_blocks = Some(2);
        let contiguous = target(2, 0, 0, 0.0);
        assert_eq!(FreestKvMigration.compare(&roomy, &tight), Ordering::Less);
        assert_eq!(
            FreestKvMigration.compare(&tight, &contiguous),
            Ordering::Less
        );
        // Among equals it falls back to least-loaded order.
        let mut tight2 = tight;
        tight2.replica = 1;
        tight2.batch_len = 4;
        assert_eq!(FreestKvMigration.compare(&tight, &tight2), Ordering::Less);
        assert_eq!(LeastLoadedMigration.name(), "least-loaded");
        assert_eq!(FreestKvMigration.name(), "freest-kv");
    }
}
