//! Serving-report types and the raw-sample assembly behind them.

use super::{ReplicaRole, RequestClass};
use ianus_sim::Duration;

/// p50/p95/p99 and worst-case of one latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst-case sample — the tail beyond p99, where preemption
    /// swap dwells and monolithic-prefill stalls hide.
    pub max: Duration,
}

impl LatencyPercentiles {
    /// All-zero percentiles (empty distribution).
    pub const ZERO: LatencyPercentiles = LatencyPercentiles {
        p50: Duration::ZERO,
        p95: Duration::ZERO,
        p99: Duration::ZERO,
        max: Duration::ZERO,
    };

    /// Percentiles of an ascending-sorted sample of seconds.
    pub(crate) fn from_sorted(sorted: &[f64]) -> Self {
        LatencyPercentiles {
            p50: percentile(sorted, 0.50),
            p95: percentile(sorted, 0.95),
            p99: percentile(sorted, 0.99),
            max: Duration::from_secs_f64(sorted.last().copied().unwrap_or(0.0)),
        }
    }
}

/// Sojourn statistics of one request class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// The class's request shape.
    pub shape: ianus_model::RequestShape,
    /// Requests of this class completed.
    pub completed: u64,
    /// Sojourn (queueing + service) percentiles.
    pub sojourn: LatencyPercentiles,
    /// KV evictions suffered by this class's requests (swap-outs plus
    /// recompute drops; 0 unless preemption is enabled). Under the
    /// default eviction order, batch-tier classes absorb these first.
    pub preemptions: u64,
    /// The subset of this class's [`preemptions`](Self::preemptions)
    /// resolved by dropping the KV and re-prefilling (host-pool
    /// overflow, or a recompute-flavored
    /// [`EvictionMechanism`](super::policy::EvictionMechanism)).
    pub recomputes: u64,
    /// Fraction of this class's completed requests that met its
    /// [`Slo`](super::Slo); 1.0 when the class has no SLO (or nothing
    /// completed).
    pub slo_attainment: f64,
}

/// Sojourn/goodput statistics of one tenant under multi-tenant
/// arrivals ([`ArrivalSpec::MultiTenant`](super::ArrivalSpec)). Every
/// other arrival process reports a single row for tenant 0.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant index (position in the spec's tenant list).
    pub tenant: u32,
    /// Requests of this tenant completed.
    pub completed: u64,
    /// Sojourn (queueing + service) percentiles over this tenant's
    /// completions; [`LatencyPercentiles::ZERO`] when none completed.
    pub sojourn: LatencyPercentiles,
    /// Fraction of this tenant's completed requests that met their
    /// class [`Slo`](super::Slo); 1.0 when nothing completed.
    pub slo_attainment: f64,
    /// This tenant's completions *within SLO* per second of simulated
    /// time — the per-tenant slice of
    /// [`goodput_rps`](ServingReport::goodput_rps), and what
    /// [`tenant_fairness`](ServingReport::tenant_fairness) compares.
    pub goodput_rps: f64,
}

/// Utilization statistics of one replica.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaReport {
    /// The replica's backend name.
    pub name: String,
    /// Requests this replica served.
    pub completed: u64,
    /// Fraction of the cluster makespan this replica spent **computing**
    /// (prefill + decode iterations). KV swap DMA is accounted in
    /// [`kv_dma`](Self::kv_dma), not here — utilization means compute.
    pub utilization: f64,
    /// Total KV swap DMA time on this replica's host link (swap-outs +
    /// swap-ins). With DMA overlap on, most of this hides under decode;
    /// the part that stalled compute is the report-level
    /// [`swap_stall`](ServingReport::swap_stall).
    pub kv_dma: Duration,
    /// The replica's [`ReplicaRole`] in the cluster
    /// ([`Unified`](ReplicaRole::Unified) outside disaggregated runs).
    pub role: ReplicaRole,
    /// Sequences migrated *onto* this replica (decode-side arrivals).
    pub migrations_in: u64,
    /// Sequences migrated *off* this replica after prefill completed.
    pub migrations_out: u64,
}

/// Result of a serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests completed.
    pub completed: u64,
    /// Mean *unloaded* device service time across completed requests:
    /// what each request would cost alone on its replica (under
    /// iteration-level scheduling, prefill plus its batch-1 decode
    /// steps). Contention — queueing and batch stretch — shows up in
    /// the sojourn percentiles, not here, so [`stable`](Self::stable)'s
    /// tail bound means the same thing in both scheduling modes.
    pub mean_service: Duration,
    /// Sojourn (queueing + service) percentiles across all requests.
    pub sojourn: LatencyPercentiles,
    /// Time-to-first-token percentiles: arrival to the end of the
    /// request's prefill (which produces the first output token). Under
    /// request-level scheduling this is queueing wait plus prefill time.
    pub ttft: LatencyPercentiles,
    /// Inter-token latency percentiles, sampled per generated token.
    /// Under iteration-level scheduling each sample is the gap between
    /// a sequence's consecutive token emissions — decode iterations
    /// *plus* any co-admitted prefills that stalled the batch; under
    /// request-level it is the request's generation time divided by its
    /// step count. Requests with a single output token contribute no
    /// samples.
    pub inter_token: LatencyPercentiles,
    /// Largest number of sequences concurrently resident on one replica
    /// (decoding or prefilling; always 1 under request-level
    /// scheduling, and at least 1 in either mode once anything is
    /// served).
    pub peak_batch: u32,
    /// Largest projected memory occupancy any admission (or, under
    /// preemption, any iteration's pressure check) saw — weights plus
    /// batch KV, as a fraction of device memory. Admissions project
    /// final lengths by default and *current* lengths under preemption.
    /// Stays 0 under request-level scheduling and for backends without
    /// a memory model. Never exceeds 1 without preemption (the gate
    /// rejects first); under preemption a value above 1 records the
    /// iterations where nothing was evictable (a lone or all-prefilling
    /// batch) and the scheduler knowingly ran overcommitted.
    pub peak_kv_occupancy: f64,
    /// Total KV eviction events across the run (0 unless the
    /// scheduling's `preempt` knob is on): swap-outs plus recompute
    /// drops. Every swap-out is eventually paired with a swap-in, and
    /// every recompute drop with a re-prefill — preempted sequences
    /// always complete.
    pub preemptions: u64,
    /// The subset of [`preemptions`](Self::preemptions) resolved by
    /// **recompute-based eviction** — the KV was dropped (host pool
    /// full, or a recompute-flavored
    /// [`EvictionMechanism`](super::policy::EvictionMechanism)) and the
    /// context re-prefilled on re-admission.
    pub recomputes: u64,
    /// Requests that were preempted at least once.
    pub preempted_requests: u64,
    /// Largest number of evictions any single request suffered.
    pub max_preemptions: u32,
    /// Largest number of bytes of swapped-out KV simultaneously
    /// resident in any replica's host pool.
    pub host_kv_peak_bytes: u64,
    /// [`host_kv_peak_bytes`](Self::host_kv_peak_bytes) as a fraction
    /// of the tightest *finite* host pool it was observed against
    /// ([`Backend::host_kv_bytes`](crate::backend::Backend::host_kv_bytes)
    /// or the [`ServingSim::host_kv_pool`](super::ServingSim::host_kv_pool)
    /// override). Never exceeds 1 — an overflowing swap-out falls back
    /// to recompute instead. 0 when nothing swapped or every pool is
    /// unbounded.
    pub host_kv_peak_occupancy: f64,
    /// Total KV swap DMA time across replicas (each transfer charged
    /// once; see [`ReplicaReport::kv_dma`]).
    pub kv_dma: Duration,
    /// Total time replica *compute* clocks sat stalled on swap DMA.
    /// Without DMA overlap every transfer stalls, so this equals
    /// [`kv_dma`](Self::kv_dma); with overlap
    /// ([`ServingSim::overlap_dma`](super::ServingSim::overlap_dma)) it
    /// shrinks to the transfers whose data was needed before the DMA
    /// finished.
    pub swap_stall: Duration,
    /// Prefill→decode KV migrations across the run: sequences handed
    /// off a [`ReplicaRole::PrefillOnly`] replica the iteration their
    /// prefill completed, transferred over both ends' host links
    /// (priced by
    /// [`Backend::kv_transfer_time`](crate::backend::Backend::kv_transfer_time)
    /// on each leg, charged to each side's
    /// [`kv_dma`](ReplicaReport::kv_dma)), and re-admitted on a
    /// [`ReplicaRole::DecodeOnly`] replica. 0 in all-`Unified`
    /// clusters. Migrated sequences always complete.
    pub migrations: u64,
    /// Total decode-side wall-clock lost to migration: idle time a
    /// decode replica spent waiting for an inbound migration's DMA to
    /// land, plus time DMA-complete migrants waited for a batch slot.
    /// The two parts are non-overlapping by construction (the wait for
    /// DMA ends exactly where slot-waiting can begin).
    pub migration_stall: Duration,
    /// Fraction of completed requests that met their class
    /// [`Slo`](super::Slo). Requests whose class has no SLO trivially
    /// attain, so a mix without SLOs reports 1.0 and
    /// [`goodput_rps`](Self::goodput_rps) equals
    /// [`throughput_rps`](Self::throughput_rps).
    pub slo_attainment: f64,
    /// Mean **compute**-busy fraction across replicas (prefill + decode
    /// iterations; KV swap DMA lives in [`kv_dma`](Self::kv_dma) and
    /// [`swap_stall`](Self::swap_stall), so swap-heavy runs no longer
    /// read as compute-saturated).
    pub utilization: f64,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
    /// Completions *within SLO* per second of simulated time — the
    /// serving-quality throughput an SLO-aware operator provisions for.
    /// Equals `throughput_rps × slo_attainment`.
    pub goodput_rps: f64,
    /// Mean allocated-but-unused fraction of the paged KV pool, sampled
    /// once per executed iteration: each live sequence's partially
    /// filled private tail block over every allocated block. 0 in
    /// contiguous mode ([`ServingSim::kv_block`](super::ServingSim::kv_block)
    /// unset), where per-sequence KV is exact by construction — this is
    /// the memory the fixed block size wastes to buy O(1) allocation.
    pub fragmentation: f64,
    /// Fraction of all admitted prompt tokens served from shared prefix
    /// blocks instead of being prefilled — the prefill compute the
    /// prefix cache saved. 0 in contiguous mode or when no class
    /// declares a [`prefix_tokens`](super::RequestClass::prefix_tokens)
    /// prefix.
    pub prefix_share_ratio: f64,
    /// Admissions that hit the prefix cache (mapped at least one shared
    /// block, shortening their prefill).
    pub prefix_cache_hits: u64,
    /// TTFT percentiles over the requests that hit the prefix cache —
    /// the headline paged-KV win: their prefill starts past the shared
    /// prefix. [`LatencyPercentiles::ZERO`] when nothing hit.
    pub ttft_cache_hit: LatencyPercentiles,
    /// TTFT percentiles over the requests that prefilled cold (no
    /// cache hit). Equals [`ttft`](Self::ttft) in contiguous mode.
    pub ttft_cold: LatencyPercentiles,
    /// Whole-workflow latency percentiles: first root arrival to the
    /// last node's completion (or final cancellation settling), over
    /// finished workflow instances. [`LatencyPercentiles::ZERO`] on
    /// flat (non-workflow) runs.
    pub workflow_latency: LatencyPercentiles,
    /// Fraction of finished workflow instances whose whole-workflow
    /// latency met their template deadline
    /// ([`WorkflowTemplate::with_deadline`](super::WorkflowTemplate::with_deadline)).
    /// 1.0 when no workflows ran or no template declares a deadline.
    pub workflow_slo_attainment: f64,
    /// Workflow instances that finished (every node completed or was
    /// cancelled). 0 on flat runs.
    pub completed_workflows: u64,
    /// Workflow nodes cancelled by speculative-group arbitration: the
    /// losing sibling subtrees released or retired without running to
    /// a counted completion. 0 on flat runs and non-speculative
    /// templates.
    pub cancelled_nodes: u64,
    /// Fraction of non-root workflow nodes' prompt tokens inherited
    /// from a parent's registered KV instead of re-prefilled — the
    /// cross-node analogue of
    /// [`prefix_share_ratio`](Self::prefix_share_ratio). 0 on flat
    /// runs, in contiguous mode, or with inheritance disabled.
    pub inherited_prefix_ratio: f64,
    /// Inter-token-latency percentiles over only the tokens emitted by
    /// requests that **arrived inside a burst window** (an MMPP burst
    /// phase, or a diurnal instant above the mean rate).
    /// [`LatencyPercentiles::ZERO`] under burst-free processes
    /// (Poisson, multi-tenant without bursty tenants) — compare against
    /// [`inter_token`](Self::inter_token) to read the burst tax.
    pub burst_inter_token: LatencyPercentiles,
    /// SLO attainment scored over only the completions that arrived
    /// inside a burst window. 1.0 when no completion arrived in a
    /// burst (in particular under Poisson arrivals), so burst-free
    /// runs stay trivially clean rather than reporting NaN.
    pub burst_slo_attainment: f64,
    /// Max/min ratio of per-tenant goodput across tenants **with at
    /// least one completion** (zero-completion tenants are excluded —
    /// they would otherwise turn the ratio into 0/0). 1.0 when fewer
    /// than two tenants completed anything, or when every counted
    /// tenant's goodput is zero; infinite when some counted tenant
    /// attained nothing while another did. 1.0 is perfect fairness.
    pub tenant_fairness: f64,
    /// Per-tenant statistics, one row per tenant in the
    /// [`ArrivalSpec`](super::ArrivalSpec)'s tenant order (a single
    /// tenant-0 row under single-tenant processes).
    pub per_tenant: Vec<TenantReport>,
    /// Per-class statistics (same order as the config's mix; under a
    /// workflow mix, one synthetic class per template node in template
    /// order).
    pub per_class: Vec<ClassReport>,
    /// Per-replica load (same order as the replicas were added).
    pub per_replica: Vec<ReplicaReport>,
    /// Whether the run was cut short by the divergence guard
    /// ([`ServingSim::divergence_depth`](super::ServingSim::divergence_depth)):
    /// the backlog of arrived-but-unadmitted requests exceeded the
    /// bound, so the engine stopped simulating a hopelessly overloaded
    /// horizon. A diverged report covers only the simulated prefix —
    /// its counters are lower bounds — and never counts as
    /// [`stable`](Self::stable).
    pub diverged: bool,
}

impl ServingReport {
    /// Whether the system was stable (utilization below one and tail
    /// latency bounded relative to service time).
    ///
    /// The tail bound matters most on wide clusters over a finite
    /// horizon, where measured utilization saturates slowly: an
    /// overloaded 8-replica run can sit just under the utilization gate
    /// while p99 sojourn has already blown out to dozens of service
    /// times.
    pub fn stable(&self) -> bool {
        !self.diverged
            && self.utilization < 0.95
            && self.sojourn.p99.as_ns_f64() < 20.0 * self.mean_service.as_ns_f64()
    }

    /// The all-zero report of an empty (zero-request) simulation, with
    /// `tenants` zeroed per-tenant rows.
    pub(crate) fn empty(
        replicas: Vec<(String, ReplicaRole)>,
        mix: &[RequestClass],
        tenants: u32,
    ) -> Self {
        ServingReport {
            completed: 0,
            mean_service: Duration::ZERO,
            sojourn: LatencyPercentiles::ZERO,
            ttft: LatencyPercentiles::ZERO,
            inter_token: LatencyPercentiles::ZERO,
            peak_batch: 0,
            peak_kv_occupancy: 0.0,
            preemptions: 0,
            recomputes: 0,
            preempted_requests: 0,
            max_preemptions: 0,
            host_kv_peak_bytes: 0,
            host_kv_peak_occupancy: 0.0,
            kv_dma: Duration::ZERO,
            swap_stall: Duration::ZERO,
            migrations: 0,
            migration_stall: Duration::ZERO,
            slo_attainment: 1.0,
            utilization: 0.0,
            throughput_rps: 0.0,
            goodput_rps: 0.0,
            fragmentation: 0.0,
            prefix_share_ratio: 0.0,
            prefix_cache_hits: 0,
            ttft_cache_hit: LatencyPercentiles::ZERO,
            ttft_cold: LatencyPercentiles::ZERO,
            workflow_latency: LatencyPercentiles::ZERO,
            workflow_slo_attainment: 1.0,
            completed_workflows: 0,
            cancelled_nodes: 0,
            inherited_prefix_ratio: 0.0,
            burst_inter_token: LatencyPercentiles::ZERO,
            burst_slo_attainment: 1.0,
            tenant_fairness: 1.0,
            per_tenant: (0..tenants)
                .map(|t| TenantReport {
                    tenant: t,
                    completed: 0,
                    sojourn: LatencyPercentiles::ZERO,
                    slo_attainment: 1.0,
                    goodput_rps: 0.0,
                })
                .collect(),
            per_class: mix
                .iter()
                .map(|c| ClassReport {
                    shape: c.shape,
                    completed: 0,
                    sojourn: LatencyPercentiles::ZERO,
                    preemptions: 0,
                    recomputes: 0,
                    slo_attainment: 1.0,
                })
                .collect(),
            per_replica: replicas
                .into_iter()
                .map(|(name, role)| ReplicaReport {
                    name,
                    completed: 0,
                    utilization: 0.0,
                    kv_dma: Duration::ZERO,
                    role,
                    migrations_in: 0,
                    migrations_out: 0,
                })
                .collect(),
            diverged: false,
        }
    }
}

/// Raw samples out of either scheduling engine, before percentile
/// assembly.
pub(crate) struct RunStats {
    pub sojourns: Vec<f64>,
    pub class_sojourns: Vec<Vec<f64>>,
    pub ttfts: Vec<f64>,
    pub itls: Vec<f64>,
    /// Per-replica **compute** time (prefill + decode iterations only;
    /// KV swap DMA goes to [`dma`](Self::dma) so utilization keeps
    /// meaning compute-busy).
    pub busy: Vec<f64>,
    /// Per-replica KV swap DMA transfer time.
    pub dma: Vec<f64>,
    /// Per-replica compute-clock time stalled on swap DMA.
    pub stall: Vec<f64>,
    /// Prefill→decode migration counters: total handoffs, decode-side
    /// wall-clock lost to them (see
    /// [`ServingReport::migration_stall`]), and per-replica in/out
    /// counts (recorded at handoff time).
    pub migrations: u64,
    pub migration_stall: f64,
    pub migrated_in: Vec<u64>,
    pub migrated_out: Vec<u64>,
    pub served: Vec<u64>,
    /// Sum of per-request *unloaded* service times: the whole-request
    /// device time under request-level scheduling, and the memoized
    /// batch-1 prefill + decode-step sum under iteration-level (the two
    /// agree to within decode-grid interpolation error). Keeping the
    /// batch-stretch *out* of this sum means [`ServingReport::stable`]'s
    /// `p99 < 20 × mean_service` bound is equally strict in both modes —
    /// pricing residency here instead lets finite-horizon overload pass
    /// as "stable" once batching inflates the denominator.
    pub service_sum: f64,
    pub last_finish: f64,
    pub peak_batch: u32,
    pub peak_kv_occupancy: f64,
    pub preemptions: u64,
    pub recomputes: u64,
    pub class_preemptions: Vec<u64>,
    pub class_recomputes: Vec<u64>,
    pub preempted_requests: u64,
    pub max_preemptions: u32,
    /// Peak bytes of swapped KV in any replica's host pool, and that
    /// peak as a fraction of the tightest finite pool it hit.
    pub host_peak_bytes: u64,
    pub host_peak_occupancy: f64,
    /// Completed requests that met their class SLO (requests without an
    /// SLO count as attained).
    pub attained: u64,
    pub class_attained: Vec<u64>,
    /// Paged-KV fragmentation samples (one per executed iteration):
    /// their sum and count, averaged at assembly.
    pub frag_sum: f64,
    pub frag_samples: u64,
    /// Admissions that mapped shared prefix blocks.
    pub prefix_hits: u64,
    /// Prompt tokens served from shared blocks vs all admitted prompt
    /// tokens (the share ratio's numerator and denominator).
    pub shared_prompt_tokens: u64,
    pub prompt_tokens: u64,
    /// TTFT samples split by prefix-cache outcome (cold = no shared
    /// blocks mapped; every request is cold in contiguous mode).
    pub ttft_hits: Vec<f64>,
    pub ttft_colds: Vec<f64>,
    /// Requests actually completed ([`complete`](Self::complete) calls)
    /// — equals the configured request count except when the divergence
    /// guard cut the run short.
    pub completions: u64,
    /// Whole-workflow latency samples (root arrival → instance
    /// settled) and how many of those met their template deadline.
    /// Empty on flat runs.
    pub workflow_latencies: Vec<f64>,
    pub workflow_attained: u64,
    /// Nodes retired by speculative-group cancellation.
    pub cancelled_nodes: u64,
    /// Inherited-prefix ratio's numerator and denominator: prompt
    /// tokens non-root workflow nodes mapped from a parent's
    /// registered KV, over all their prompt tokens.
    pub inherited_tokens: u64,
    pub inheritable_tokens: u64,
    /// Per-tenant sojourn samples and SLO-attained counts, indexed by
    /// tenant (length = the arrival spec's tenant count).
    pub tenant_sojourns: Vec<Vec<f64>>,
    pub tenant_attained: Vec<u64>,
    /// ITL samples of tokens emitted by requests that arrived inside a
    /// burst window — a *separate* vector pushed alongside
    /// [`itls`](Self::itls), so burst accounting never perturbs the
    /// existing sample order.
    pub burst_itls: Vec<f64>,
    /// Completions (and SLO-attained completions) of requests that
    /// arrived inside a burst window.
    pub burst_completed: u64,
    pub burst_attained: u64,
    /// Whether the divergence guard fired (see
    /// [`ServingReport::diverged`]).
    pub diverged: bool,
}

impl RunStats {
    pub fn new(replicas: usize, classes: usize, requests: u64, tenants: u32) -> Self {
        RunStats {
            sojourns: Vec::with_capacity(requests as usize),
            class_sojourns: vec![Vec::new(); classes],
            ttfts: Vec::with_capacity(requests as usize),
            itls: Vec::new(),
            busy: vec![0.0; replicas],
            dma: vec![0.0; replicas],
            stall: vec![0.0; replicas],
            migrations: 0,
            migration_stall: 0.0,
            migrated_in: vec![0u64; replicas],
            migrated_out: vec![0u64; replicas],
            served: vec![0u64; replicas],
            service_sum: 0.0,
            last_finish: 0.0,
            peak_batch: 0,
            peak_kv_occupancy: 0.0,
            preemptions: 0,
            recomputes: 0,
            class_preemptions: vec![0u64; classes],
            class_recomputes: vec![0u64; classes],
            preempted_requests: 0,
            max_preemptions: 0,
            host_peak_bytes: 0,
            host_peak_occupancy: 0.0,
            attained: 0,
            class_attained: vec![0u64; classes],
            frag_sum: 0.0,
            frag_samples: 0,
            prefix_hits: 0,
            shared_prompt_tokens: 0,
            prompt_tokens: 0,
            ttft_hits: Vec::new(),
            ttft_colds: Vec::with_capacity(requests as usize),
            completions: 0,
            workflow_latencies: Vec::new(),
            workflow_attained: 0,
            cancelled_nodes: 0,
            inherited_tokens: 0,
            inheritable_tokens: 0,
            tenant_sojourns: vec![Vec::new(); tenants.max(1) as usize],
            tenant_attained: vec![0u64; tenants.max(1) as usize],
            burst_itls: Vec::new(),
            burst_completed: 0,
            burst_attained: 0,
            diverged: false,
        }
    }

    /// Records one completed request: its unloaded service time, how
    /// often it was preempted (and recompute-preempted) along the way,
    /// whether it met its class SLO, which tenant submitted it, and
    /// whether it arrived inside a burst window.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        replica: usize,
        class: usize,
        arrival: f64,
        service: f64,
        finish: f64,
        preemptions: u32,
        recomputes: u32,
        attained: bool,
        tenant: u32,
        in_burst: bool,
    ) {
        self.completions += 1;
        self.sojourns.push(finish - arrival);
        self.class_sojourns[class].push(finish - arrival);
        self.tenant_sojourns[tenant as usize].push(finish - arrival);
        self.service_sum += service;
        self.served[replica] += 1;
        self.last_finish = self.last_finish.max(finish);
        self.class_preemptions[class] += u64::from(preemptions);
        self.class_recomputes[class] += u64::from(recomputes);
        if preemptions > 0 {
            self.preempted_requests += 1;
            self.max_preemptions = self.max_preemptions.max(preemptions);
        }
        if in_burst {
            self.burst_completed += 1;
        }
        if attained {
            self.attained += 1;
            self.class_attained[class] += 1;
            self.tenant_attained[tenant as usize] += 1;
            if in_burst {
                self.burst_attained += 1;
            }
        }
    }

    /// Builds the report from either engine's raw samples. `mix` is the
    /// run's effective request-class list and `replicas` the
    /// (name, role) rows in replica order.
    pub fn into_report(
        mut self,
        mix: &[RequestClass],
        replicas: Vec<(String, ReplicaRole)>,
    ) -> ServingReport {
        let finite_sort = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        };
        finite_sort(&mut self.sojourns);
        finite_sort(&mut self.ttfts);
        finite_sort(&mut self.ttft_hits);
        finite_sort(&mut self.ttft_colds);
        finite_sort(&mut self.itls);
        finite_sort(&mut self.burst_itls);
        for cs in &mut self.class_sojourns {
            finite_sort(cs);
        }
        for ts in &mut self.tenant_sojourns {
            finite_sort(ts);
        }
        finite_sort(&mut self.workflow_latencies);
        let n = replicas.len();
        let per_class = mix
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let cs = &self.class_sojourns[i];
                let completed = cs.len() as u64;
                ClassReport {
                    shape: c.shape,
                    completed,
                    sojourn: LatencyPercentiles::from_sorted(cs),
                    preemptions: self.class_preemptions[i],
                    recomputes: self.class_recomputes[i],
                    slo_attainment: if completed == 0 {
                        1.0
                    } else {
                        self.class_attained[i] as f64 / completed as f64
                    },
                }
            })
            .collect();
        let per_replica = replicas
            .into_iter()
            .enumerate()
            .map(|(i, (name, role))| ReplicaReport {
                name,
                role,
                completed: self.served[i],
                utilization: if self.last_finish > 0.0 {
                    (self.busy[i] / self.last_finish).min(1.0)
                } else {
                    0.0
                },
                kv_dma: Duration::from_secs_f64(self.dma[i]),
                migrations_in: self.migrated_in[i],
                migrations_out: self.migrated_out[i],
            })
            .collect();
        // A tenant with zero completions gets a zeroed row and is
        // excluded from the fairness ratio — it contributes no goodput
        // evidence, and including it would make every partial run
        // (or the divergence-guard prefix) read as infinitely unfair.
        let per_tenant: Vec<TenantReport> = self
            .tenant_sojourns
            .iter()
            .enumerate()
            .map(|(t, ts)| {
                let completed = ts.len() as u64;
                TenantReport {
                    tenant: t as u32,
                    completed,
                    sojourn: LatencyPercentiles::from_sorted(ts),
                    slo_attainment: if completed == 0 {
                        1.0
                    } else {
                        self.tenant_attained[t] as f64 / completed as f64
                    },
                    goodput_rps: if self.last_finish > 0.0 {
                        self.tenant_attained[t] as f64 / self.last_finish
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let counted: Vec<f64> = per_tenant
            .iter()
            .filter(|t| t.completed > 0)
            .map(|t| t.goodput_rps)
            .collect();
        let tenant_fairness = if counted.len() < 2 {
            1.0
        } else {
            let max = counted.iter().cloned().fold(f64::MIN, f64::max);
            let min = counted.iter().cloned().fold(f64::MAX, f64::min);
            if max == 0.0 {
                // Every counted tenant attained nothing: equally
                // (un)served is still fair.
                1.0
            } else if min == 0.0 {
                f64::INFINITY
            } else {
                max / min
            }
        };
        // On a completed run every configured request finishes, so the
        // observed count equals `cfg.requests`; a divergence abort
        // reports the prefix that actually completed. `max(1)` and the
        // span guards only matter on an abort before any completion.
        let completions = self.completions;
        ServingReport {
            completed: completions,
            mean_service: Duration::from_secs_f64(self.service_sum / completions.max(1) as f64),
            sojourn: LatencyPercentiles::from_sorted(&self.sojourns),
            ttft: LatencyPercentiles::from_sorted(&self.ttfts),
            inter_token: LatencyPercentiles::from_sorted(&self.itls),
            peak_batch: self.peak_batch,
            peak_kv_occupancy: self.peak_kv_occupancy,
            preemptions: self.preemptions,
            recomputes: self.recomputes,
            preempted_requests: self.preempted_requests,
            max_preemptions: self.max_preemptions,
            host_kv_peak_bytes: self.host_peak_bytes,
            host_kv_peak_occupancy: self.host_peak_occupancy,
            kv_dma: Duration::from_secs_f64(self.dma.iter().sum()),
            swap_stall: Duration::from_secs_f64(self.stall.iter().sum()),
            migrations: self.migrations,
            migration_stall: Duration::from_secs_f64(self.migration_stall),
            fragmentation: if self.frag_samples > 0 {
                self.frag_sum / self.frag_samples as f64
            } else {
                0.0
            },
            prefix_share_ratio: if self.prompt_tokens > 0 {
                self.shared_prompt_tokens as f64 / self.prompt_tokens as f64
            } else {
                0.0
            },
            prefix_cache_hits: self.prefix_hits,
            ttft_cache_hit: LatencyPercentiles::from_sorted(&self.ttft_hits),
            ttft_cold: LatencyPercentiles::from_sorted(&self.ttft_colds),
            slo_attainment: self.attained as f64 / completions.max(1) as f64,
            workflow_latency: LatencyPercentiles::from_sorted(&self.workflow_latencies),
            workflow_slo_attainment: if self.workflow_latencies.is_empty() {
                1.0
            } else {
                self.workflow_attained as f64 / self.workflow_latencies.len() as f64
            },
            completed_workflows: self.workflow_latencies.len() as u64,
            cancelled_nodes: self.cancelled_nodes,
            inherited_prefix_ratio: if self.inheritable_tokens > 0 {
                self.inherited_tokens as f64 / self.inheritable_tokens as f64
            } else {
                0.0
            },
            burst_inter_token: LatencyPercentiles::from_sorted(&self.burst_itls),
            burst_slo_attainment: if self.burst_completed == 0 {
                1.0
            } else {
                self.burst_attained as f64 / self.burst_completed as f64
            },
            tenant_fairness,
            per_tenant,
            utilization: if self.last_finish > 0.0 {
                (self.busy.iter().sum::<f64>() / (n as f64 * self.last_finish)).min(1.0)
            } else {
                0.0
            },
            throughput_rps: if self.last_finish > 0.0 {
                completions as f64 / self.last_finish
            } else {
                0.0
            },
            goodput_rps: if self.last_finish > 0.0 {
                self.attained as f64 / self.last_finish
            } else {
                0.0
            },
            diverged: self.diverged,
            per_class,
            per_replica,
        }
    }
}

/// Whether a completed request met `slo`: TTFT within target and the
/// p99 of its own inter-token gaps within target. `gaps` need not be
/// sorted (this sorts a copy); an empty gap set (single-token request)
/// trivially meets the ITL half.
pub(crate) fn request_attains(slo: Option<super::Slo>, ttft_secs: f64, gaps: &[f64]) -> bool {
    let Some(slo) = slo else { return true };
    if ttft_secs > slo.ttft.as_secs_f64() {
        return false;
    }
    if gaps.is_empty() {
        return true;
    }
    let mut sorted = gaps.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("gaps are finite"));
    percentile(&sorted, 0.99).as_secs_f64() <= slo.itl_p99.as_secs_f64()
}

pub(crate) fn percentile(sorted: &[f64], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_secs_f64(sorted[idx])
}
