//! Cluster-scale serving simulation over the unified
//! [`Backend`](crate::backend::Backend) trait, at request or token
//! granularity, with pluggable scheduler policies.
//!
//! [`ServingSim`] simulates a **cluster of replica backends** — any mix
//! of `IanusSystem`s, device groups, or the analytical baselines — fed by
//! deterministic, seeded Poisson arrivals of a weighted request-shape
//! mix. Two [`Scheduling`] modes cover the two ways real fleets run:
//!
//! * [`Scheduling::RequestLevel`] — each replica serves one whole request
//!   at a time (classic M/G/k) under a pluggable [`DispatchPolicy`]. This
//!   is the paper's Section 6.1 regime: interactive datacenters that
//!   refuse to wait for batches serve batch 1, and IANUS is built to win
//!   exactly there — its PIM GEMVs make non-batched decode
//!   bandwidth-efficient, so batching buys it almost nothing.
//! * [`Scheduling::IterationLevel`] — continuous batching: replicas
//!   admit requests from a global wait queue at every decode-iteration
//!   boundary, up to `max_batch` concurrent sequences, gated by the
//!   backend's KV-cache residency check
//!   ([`Backend::batch_fits`](crate::backend::Backend::batch_fits), built on
//!   [`capacity::check_batch`](crate::capacity::check_batch)). This is
//!   where a weight-streaming GPU claws throughput back: its decode
//!   GEMVs become skinny GEMMs whose weight traffic is read once per
//!   iteration, so `max_batch ≥ 4` multiplies its sustainable rate —
//!   at the price of inter-token latency, which is why the comparison
//!   needs both modes to be quantitative.
//!
//! Iteration-level scheduling has two further knobs, both off by
//! default (see [`Scheduling::iteration`] for the plain form):
//!
//! * **Chunked prefill** (`prefill_chunk`): instead of prefilling a
//!   whole prompt the moment a request is admitted — stalling every
//!   resident decode for the full prompt duration — the scheduler
//!   splits the prompt into chunks and runs **mixed iterations**: one
//!   chunk of one sequence's prefill plus one decode step of the
//!   resident batch, priced as [`Backend::prefill_time`](crate::backend::Backend::prefill_time) on the chunk
//!   plus [`Backend::decode_time`](crate::backend::Backend::decode_time) on the decoding sequences. Long
//!   prompts then stretch each resident ITL sample by one *chunk*, not
//!   one *prompt*.
//! * **KV-pressure preemption** (`preempt`): admission gates on the
//!   batch's *current* KV lengths instead of every sequence's final
//!   length, so more sequences are admitted up front; when KV growth
//!   later makes the batch outgrow device memory, the scheduler evicts
//!   a decoding sequence to a swap queue — charging
//!   [`Backend::kv_transfer_time`](crate::backend::Backend::kv_transfer_time) for the KV swap-out, and again for
//!   the swap-in when it is re-admitted — and reports per-request
//!   preemption counts in the [`ServingReport`].
//!
//! Swapped KV is a **finite host-side resource**: each replica's pool
//! is bounded by
//! [`Backend::host_kv_bytes`](crate::backend::Backend::host_kv_bytes)
//! (or the [`ServingSim::host_kv_pool`] override), and a swap-out that
//! would overflow it falls back to **recompute-based eviction** — the
//! KV is dropped and the whole context re-prefilled on re-admission.
//! Recompute is also selectable outright (or per-victim by cost) via
//! [`EvictionMechanism`] on the policy bundle, and the
//! [`CheapestEviction`](policy::CheapestEviction) policy picks victims
//! by eviction cost per KV token freed. With
//! [`ServingSim::overlap_dma`], swap traffic runs on a per-replica DMA
//! channel that overlaps decode: transfers only stall the batch when
//! the memory or the sequence is actually needed, and the report
//! splits [`kv_dma`](ServingReport::kv_dma) from
//! [`swap_stall`](ServingReport::swap_stall) —
//! [`utilization`](ServingReport::utilization) always means compute.
//!
//! # Disaggregated prefill/decode
//!
//! Iteration-level replicas can further take a [`ReplicaRole`]: a
//! [`PrefillOnly`](ReplicaRole::PrefillOnly) replica admits arrivals,
//! runs their prefill, then hands each sequence off to a
//! [`DecodeOnly`](ReplicaRole::DecodeOnly) replica — the KV migrates
//! over a two-channel DMA link (see [`dma`]) priced by
//! [`Backend::kv_transfer_time`](crate::backend::Backend::kv_transfer_time)
//! on both legs, and the destination applies its own admission gate
//! and paged-KV block accounting on arrival. The destination is chosen
//! by the installed [`MigrationPolicy`]
//! ([`ServingSim::migration`]; least-loaded by default), pools are
//! sized by [`DisaggregationConfig`] (by count or at equal hardware
//! cost via [`capacity::device_cost_units`](crate::capacity::device_cost_units)),
//! and the report grows [`migrations`](ServingReport::migrations),
//! [`migration_stall`](ServingReport::migration_stall), and per-role
//! replica rows. This is the paper's cluster-level claim made
//! runnable: GPUs win compute-dense prefill, PIM wins token-serial
//! decode, and `examples/disaggregated.rs` measures when the split
//! beats the best equal-cost homogeneous pool. All-`Unified` clusters
//! take none of these paths and stay bit-identical to the
//! pre-disaggregation engine.
//!
//! # Scheduler policies
//!
//! *Which* request is admitted next, *which* sequence is evicted under
//! KV pressure, and *which* swapped sequence re-enters first are not
//! baked into the event loop: they are the three [`policy`] traits —
//! [`AdmissionPolicy`], [`EvictionPolicy`], and [`ReadmissionPolicy`] —
//! bundled into a [`SchedulerPolicy`] and installed with
//! [`ServingSim::policy`]. The default bundle (FCFS admission,
//! lowest-[`Priority`]/youngest eviction, FIFO re-admission) reproduces
//! the historical hard-wired behavior bit-identically; the alternatives
//! ([`DeadlineAdmission`](policy::DeadlineAdmission),
//! [`LargestKv`](policy::LargestKv),
//! [`LeastProgress`](policy::LeastProgress), …) exist to *compare*
//! victim-selection and SLO-ordering rules under identical traffic.
//!
//! Request classes can carry an [`Slo`] (TTFT and ITL-p99 targets);
//! the report then scores per-class and aggregate
//! [`slo_attainment`](ServingReport::slo_attainment) and
//! [`goodput_rps`](ServingReport::goodput_rps) (completions *within*
//! SLO per second), and
//! [`ServingSim::sustainable_goodput_rate`] bisects on goodput instead
//! of bare stability.
//!
//! The result is a [`ServingReport`] with sojourn, **time-to-first-token
//! and inter-token-latency** percentiles (including the worst-case
//! `max` sample), per-class and per-replica statistics, and a
//! [`ServingSim::sustainable_rate`] search helper that works under both
//! modes.
//!
//! Device step costs come from the same simulations the figures use,
//! memoized per replica: whole-request service times per `(model,
//! shape)`, prefill times per `(model, tokens)`, and decode-iteration
//! times per `(model, batch)` on a geometric grid of past-lengths with
//! piecewise-linear interpolation between grid points — so rate sweeps
//! stay queueing-only fast in either mode.
//!
//! # Examples
//!
//! A two-replica IANUS cluster under least-loaded dispatch:
//!
//! ```
//! use ianus_core::serving::{DispatchPolicy, ServingConfig, ServingSim};
//! use ianus_core::{IanusSystem, SystemConfig};
//! use ianus_model::ModelConfig;
//!
//! let report = ServingSim::new(ServingConfig::interactive(6.0, 200))
//!     .replica(IanusSystem::new(SystemConfig::ianus()))
//!     .replica(IanusSystem::new(SystemConfig::ianus()))
//!     .dispatch(DispatchPolicy::LeastLoaded)
//!     .run(&ModelConfig::gpt2_m());
//! assert_eq!(report.completed, 200);
//! assert_eq!(report.per_replica.len(), 2);
//! assert!(report.utilization > 0.0 && report.utilization <= 1.0);
//! ```
//!
//! The same cluster under continuous batching, with first-token and
//! inter-token tails:
//!
//! ```
//! use ianus_core::serving::{Scheduling, ServingConfig, ServingSim};
//! use ianus_core::{IanusSystem, SystemConfig};
//! use ianus_model::ModelConfig;
//!
//! let report = ServingSim::new(ServingConfig::interactive(6.0, 200))
//!     .replica(IanusSystem::new(SystemConfig::ianus()))
//!     .scheduling(Scheduling::iteration(4))
//!     .run(&ModelConfig::gpt2_m());
//! assert_eq!(report.completed, 200);
//! assert!(report.ttft.p99 >= report.ttft.p50);
//! assert!(report.inter_token.p50.as_ms_f64() > 0.0);
//! assert!(report.inter_token.max >= report.inter_token.p99);
//! assert!(report.peak_batch >= 1 && report.peak_batch <= 4);
//! ```
//!
//! A custom policy bundle with SLOs — deadline-EDF admission, largest-KV
//! eviction, and goodput scoring:
//!
//! ```
//! use ianus_core::serving::policy::{DeadlineAdmission, LargestKv};
//! use ianus_core::serving::{
//!     RequestClass, Scheduling, SchedulerPolicy, ServingConfig, ServingSim, Slo,
//! };
//! use ianus_core::{IanusSystem, SystemConfig};
//! use ianus_model::{ModelConfig, RequestShape};
//! use ianus_sim::Duration;
//!
//! let mut cfg = ServingConfig::interactive(6.0, 120);
//! let slo = Slo::new(Duration::from_ms(400), Duration::from_ms(30));
//! cfg.mix = cfg.mix.into_iter().map(|c| c.with_slo(slo)).collect();
//! let report = ServingSim::new(cfg)
//!     .replica(IanusSystem::new(SystemConfig::ianus()))
//!     .scheduling(Scheduling::iteration(4))
//!     .policy(
//!         SchedulerPolicy::default()
//!             .with_admission(DeadlineAdmission)
//!             .with_eviction(LargestKv),
//!     )
//!     .run(&ModelConfig::gpt2_m());
//! assert_eq!(report.completed, 120);
//! assert!(report.slo_attainment > 0.0 && report.slo_attainment <= 1.0);
//! assert!(report.goodput_rps <= report.throughput_rps);
//! ```

#![deny(missing_docs)]

pub mod dma;
pub mod kv;
pub mod policy;
pub mod workflow;

mod engine;
mod report;
#[cfg(test)]
mod tests;

pub use engine::{
    ArrivalDraw, ArrivalProcess, ArrivalSpec, CoreMode, DiurnalArrivals, MmppArrivals,
    MultiTenantArrivals, PoissonArrivals, ServingSim, TenantSpec,
};
pub use policy::{
    AdmissionPolicy, EvictionMechanism, EvictionPolicy, MigrationPolicy, ReadmissionPolicy,
    SchedulerPolicy,
};
pub use report::{ClassReport, LatencyPercentiles, ReplicaReport, ServingReport, TenantReport};
pub use workflow::{WorkflowError, WorkflowNode, WorkflowTemplate};

use ianus_model::RequestShape;
use ianus_sim::Duration;

/// Scheduling tier of a request class.
///
/// Priorities matter to the [`policy`] layer: the default
/// [`EvictionPolicy`] sheds KV pressure from [`Priority::Batch`]
/// sequences before [`Priority::Interactive`] ones (and the youngest
/// sequence within a tier), and
/// [`PriorityAdmission`](policy::PriorityAdmission) reorders the wait
/// queue by tier. Under the default FCFS admission the tier decides who
/// *pays* for overcommit, not who runs first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Throughput-oriented background work (evicted first).
    Batch,
    /// Latency-sensitive interactive traffic (evicted last).
    Interactive,
}

/// A per-request latency service-level objective.
///
/// A completed request *attains* its SLO when its time-to-first-token
/// is at most [`ttft`](Self::ttft) **and** the 99th percentile of its
/// own inter-token gaps is at most [`itl_p99`](Self::itl_p99).
/// Attainment is scored per class and in aggregate in the
/// [`ServingReport`] (`slo_attainment`, `goodput_rps`); the deadline
/// that [`DeadlineAdmission`](policy::DeadlineAdmission) and
/// [`DeadlineReadmission`](policy::DeadlineReadmission) order by is
/// `arrival + ttft`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slo {
    /// Time-to-first-token target (arrival to first output token).
    pub ttft: Duration,
    /// Per-request 99th-percentile inter-token-latency target.
    pub itl_p99: Duration,
}

impl Slo {
    /// An SLO with the given TTFT and ITL-p99 targets.
    pub fn new(ttft: Duration, itl_p99: Duration) -> Self {
        Slo { ttft, itl_p99 }
    }
}

/// One entry of the request-shape mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestClass {
    /// The request shape.
    pub shape: RequestShape,
    /// Relative weight of this class in the mix.
    pub weight: f64,
    /// Scheduling tier (see [`Priority`]).
    pub priority: Priority,
    /// Latency SLO scored for this class (`None`: the class has no
    /// target, so its requests trivially attain).
    pub slo: Option<Slo>,
    /// Leading prompt tokens shared by every request of this class (a
    /// common system prompt / few-shot header). 0 — the default — means
    /// the class opts out of prefix sharing. Only **paged** KV
    /// accounting ([`ServingSim::kv_block`] above 0) acts on it: the
    /// first request to prefill publishes its full prefix *blocks* to a
    /// per-class prefix cache, and later admissions map those blocks
    /// copy-on-write and prefill only the suffix (shorter prefill →
    /// lower TTFT). Sharing is capped below the prompt length so at
    /// least one token always prefills.
    pub prefix_tokens: u64,
}

impl RequestClass {
    /// An [`Priority::Interactive`] class of `shape` with `weight` and
    /// no SLO.
    pub fn new(shape: RequestShape, weight: f64) -> Self {
        RequestClass {
            shape,
            weight,
            priority: Priority::Interactive,
            slo: None,
            prefix_tokens: 0,
        }
    }

    /// Replaces the priority tier (builder style).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches a latency [`Slo`] (builder style).
    pub fn with_slo(mut self, slo: Slo) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Declares the class's first `tokens` prompt tokens shared across
    /// its requests (builder style; see
    /// [`prefix_tokens`](Self::prefix_tokens)).
    pub fn with_shared_prefix(mut self, tokens: u64) -> Self {
        self.prefix_tokens = tokens;
        self
    }
}

/// Configuration of a serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Mean arrival rate in requests per second (Poisson process),
    /// aggregated over the whole cluster.
    pub arrival_rate_hz: f64,
    /// Number of requests to simulate.
    pub requests: u64,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
    /// Request-shape mix (weights need not sum to one).
    pub mix: Vec<RequestClass>,
    /// Agentic workflow mix (see [`workflow`]). When non-empty the
    /// engine runs in *workflow mode*: [`requests`](Self::requests)
    /// counts workflow **instances** (each Poisson arrival draws one
    /// weighted [`WorkflowTemplate`] and releases its root nodes; child
    /// nodes queue when their last parent completes), `mix` must be
    /// empty, and scheduling must be iteration-level. A single-node
    /// template behaves bit-identically to the equivalent flat
    /// [`RequestClass`] mix.
    pub workflows: Vec<WorkflowTemplate>,
    /// The shape of the arrival process (see [`ArrivalSpec`]). The
    /// default [`ArrivalSpec::Poisson`] reproduces the historical
    /// seeded Poisson trace byte-for-byte; the alternatives modulate
    /// the *timing* of the same mean rate — sinusoidal diurnal cycles,
    /// two-state Markov-modulated bursts, or K merged per-tenant
    /// processes — while keeping [`arrival_rate_hz`](Self::arrival_rate_hz)
    /// the long-run mean.
    pub arrivals: ArrivalSpec,
}

impl ServingConfig {
    /// A typical interactive mix: mostly short chat turns, some longer
    /// completions.
    pub fn interactive(arrival_rate_hz: f64, requests: u64) -> Self {
        ServingConfig {
            arrival_rate_hz,
            requests,
            seed: 0x5EED,
            mix: vec![
                RequestClass::new(RequestShape::new(128, 32), 0.6),
                RequestClass::new(RequestShape::new(256, 64), 0.3),
                RequestClass::new(RequestShape::new(512, 256), 0.1),
            ],
            workflows: vec![],
            arrivals: ArrivalSpec::Poisson,
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the arrival rate (builder style).
    ///
    /// This is the cold-start form; for sweeping rates over one warm
    /// engine, [`ServingSim::set_rate`] is the canonical entry and
    /// documents the rate-sweep contract (memos survive, the trace is
    /// re-seeded per run).
    pub fn with_rate(mut self, arrival_rate_hz: f64) -> Self {
        self.arrival_rate_hz = arrival_rate_hz;
        self
    }

    /// Replaces the arrival-process shape (builder style; see
    /// [`ArrivalSpec`]). Panics if `spec` is invalid — a malformed
    /// spec would otherwise only surface at [`ServingSim::run`] time.
    pub fn arrivals(mut self, spec: ArrivalSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid arrival spec: {e}");
        }
        self.arrivals = spec;
        self
    }

    /// A decode-heavy mix: short prompts, long generations. This is the
    /// regime where iteration-level batching pays on weight-streaming
    /// backends (decode dominates, and batched decode amortizes weight
    /// traffic), and where batch-1 hardware like IANUS must win on raw
    /// per-token latency instead.
    pub fn decode_heavy(arrival_rate_hz: f64, requests: u64) -> Self {
        ServingConfig {
            arrival_rate_hz,
            requests,
            seed: 0x5EED,
            mix: vec![
                RequestClass::new(RequestShape::new(32, 128), 0.5),
                RequestClass::new(RequestShape::new(64, 256), 0.35),
                RequestClass::new(RequestShape::new(128, 512), 0.15),
            ],
            workflows: vec![],
            arrivals: ArrivalSpec::Poisson,
        }
    }

    /// A two-tier mix of mostly short interactive turns plus a tail of
    /// long-prompt [`Priority::Batch`] jobs (document summarization /
    /// ingestion). This is the regime chunked prefill exists for: a
    /// monolithic 896-token prefill stalls every resident decode for the
    /// whole prompt, so the interactive tier's ITL tail tracks the
    /// *batch* tier's prompt length until prefill is chunked — and the
    /// regime where the eviction policy's victim order (batch before
    /// interactive under the default) earns its keep.
    pub fn long_prompt(arrival_rate_hz: f64, requests: u64) -> Self {
        ServingConfig {
            arrival_rate_hz,
            requests,
            seed: 0x5EED,
            mix: vec![
                RequestClass::new(RequestShape::new(128, 32), 0.75),
                RequestClass::new(RequestShape::new(896, 64), 0.25).with_priority(Priority::Batch),
            ],
            workflows: vec![],
            arrivals: ArrivalSpec::Poisson,
        }
    }

    /// A shared-prefix mix: two equal tiers of (512, 512) requests —
    /// interactive and [`Priority::Batch`] — each carrying a 384-token
    /// class-wide prompt prefix (a system prompt / few-shot header;
    /// 75% of every prompt). Under paged KV accounting
    /// ([`ServingSim::kv_block`]) this is the regime copy-on-write
    /// prefix sharing exists for: after each tier's first cold prefill,
    /// admissions map the cached prefix blocks and prefill only the
    /// 128-token suffix. The heavy (512, 512) shape also keeps KV
    /// pressure — and therefore preemption, when enabled — alive, so
    /// shared blocks are exercised by eviction, not just admission.
    pub fn shared_prefix(arrival_rate_hz: f64, requests: u64) -> Self {
        let shape = RequestShape::new(512, 512);
        ServingConfig {
            arrival_rate_hz,
            requests,
            seed: 0x5EED,
            mix: vec![
                RequestClass::new(shape, 0.5).with_shared_prefix(384),
                RequestClass::new(shape, 0.5)
                    .with_priority(Priority::Batch)
                    .with_shared_prefix(384),
            ],
            workflows: vec![],
            arrivals: ArrivalSpec::Poisson,
        }
    }

    /// An agentic workflow mix: `requests` workflow *instances* drawn
    /// from `workflows` by weight (templates are
    /// [validated](WorkflowTemplate::validate) up front — panics on a
    /// cyclic, dangling, or empty graph). Requires iteration-level
    /// scheduling at run time; the flat `mix` stays empty.
    pub fn workflow_mix(
        arrival_rate_hz: f64,
        requests: u64,
        workflows: Vec<WorkflowTemplate>,
    ) -> Self {
        assert!(!workflows.is_empty(), "workflow mix must be non-empty");
        for (i, tpl) in workflows.iter().enumerate() {
            if let Err(e) = tpl.validate() {
                panic!("workflow template {i} is invalid: {e}");
            }
        }
        ServingConfig {
            arrival_rate_hz,
            requests,
            seed: 0x5EED,
            mix: vec![],
            workflows,
            arrivals: ArrivalSpec::Poisson,
        }
    }
}

/// At what granularity the cluster schedules work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheduling {
    /// Each replica serves one whole request at a time; arriving
    /// requests are routed by the [`DispatchPolicy`]. The paper's
    /// batch-1 interactive regime (Section 6.1).
    RequestLevel,
    /// Continuous batching: every replica admits requests from one
    /// global wait queue at each decode-iteration boundary, up to
    /// `max_batch` concurrent sequences, gated by the backend's
    /// KV-residency check ([`Backend::batch_fits`](crate::backend::Backend::batch_fits)). The wait queue is
    /// ordered by the installed [`AdmissionPolicy`] (FCFS by default).
    /// Admitted requests prefill immediately (no waiting to form
    /// batches), then join the running decode batch; each iteration
    /// emits one token per active sequence. The [`DispatchPolicy`] is
    /// ignored in this mode — the global queue *is* the dispatch.
    ///
    /// [`Scheduling::iteration`] builds the plain form (monolithic
    /// prefill, no preemption); the fields document the two extensions.
    IterationLevel {
        /// Maximum concurrent sequences per replica (≥ 1).
        max_batch: u32,
        /// Chunked prefill: `Some(n)` splits every prompt into chunks of
        /// at most `n` tokens and interleaves one chunk per iteration
        /// with the resident batch's decode step (a *mixed* iteration,
        /// priced as the chunk's [`Backend::prefill_time`](crate::backend::Backend::prefill_time) plus the
        /// decode batch's [`Backend::decode_time`](crate::backend::Backend::decode_time)). `None` prefills
        /// each prompt whole in one iteration. Must be positive when
        /// set.
        prefill_chunk: Option<u64>,
        /// KV-pressure preemption: admission gates on *current* KV
        /// lengths (optimistic overcommit), and when batch KV growth no
        /// longer fits, the installed [`EvictionPolicy`]'s victim (the
        /// lowest-[`Priority`], youngest decoding sequence by default)
        /// is swapped out (charged [`Backend::kv_transfer_time`](crate::backend::Backend::kv_transfer_time) each
        /// way) until pressure clears, then re-admitted in the
        /// [`ReadmissionPolicy`]'s order ahead of new arrivals. When
        /// `false`, admission gates on final lengths, so pressure can
        /// never reject a batch mid-flight.
        preempt: bool,
    },
}

impl Scheduling {
    /// Iteration-level continuous batching with monolithic prefill and
    /// no preemption — the common form.
    pub fn iteration(max_batch: u32) -> Self {
        Scheduling::IterationLevel {
            max_batch,
            prefill_chunk: None,
            preempt: false,
        }
    }
}

/// How arriving requests are assigned to replicas (request-level
/// scheduling only; iteration-level pulls from a global wait queue
/// ordered by the [`AdmissionPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// One global FCFS queue: each request in arrival order goes to the
    /// replica that frees up earliest (classic M/G/k). Implicitly
    /// speed-aware — a fast replica frees up sooner.
    FcfsSingleQueue,
    /// Route at arrival to the replica with the *fewest outstanding
    /// requests* (queued + in service), ignoring how fast that replica
    /// is — the load-balancer view when per-request cost is unknown.
    LeastLoaded,
    /// Route at arrival to the replica with the smallest *expected
    /// completion time* for this request — backlog plus this shape's
    /// memoized service time on that replica. On heterogeneous clusters
    /// this steers work toward faster replicas.
    ShortestExpectedJob,
}

/// What work a replica accepts in a disaggregated cluster
/// (iteration-level scheduling only).
///
/// Roles express the paper's heterogeneous-cluster claim: compute-dense
/// prefill goes to GPU-class replicas, token-serial decode to PIM-class
/// replicas, with the KV migrating between them (see the
/// [module docs](self#disaggregated-prefilldecode)). The default
/// [`Unified`](ReplicaRole::Unified) role does both, and an
/// all-`Unified` cluster behaves bit-identically to the
/// pre-disaggregation engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplicaRole {
    /// Admits arrivals and serves them start to finish (the default).
    #[default]
    Unified,
    /// Admits arrivals and runs prefill, then migrates each sequence's
    /// KV to a decode replica the moment its prefill completes. If the
    /// cluster has no decode replicas, decodes locally as a fallback.
    PrefillOnly,
    /// Never admits arrivals; serves only sequences migrated in from
    /// prefill replicas, decoding them to completion.
    DecodeOnly,
}

impl ReplicaRole {
    /// Short lowercase label ("unified" / "prefill" / "decode").
    pub fn name(self) -> &'static str {
        match self {
            ReplicaRole::Unified => "unified",
            ReplicaRole::PrefillOnly => "prefill",
            ReplicaRole::DecodeOnly => "decode",
        }
    }
}

/// Sizing of a disaggregated cluster's prefill and decode pools.
///
/// Build one [`by_count`](Self::by_count) when the pool sizes are
/// given, or [`equal_cost`](Self::equal_cost) to split a hardware
/// budget (in the cost units of
/// [`capacity::device_cost_units`](crate::capacity::device_cost_units))
/// between heterogeneous prefill and decode devices — the form the
/// paper's equal-cost comparisons need. Feed it to
/// [`ServingSim::disaggregated`], which instantiates
/// `prefill + decode` replicas with the matching [`ReplicaRole`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisaggregationConfig {
    /// Number of [`ReplicaRole::PrefillOnly`] replicas (≥ 1).
    pub prefill: usize,
    /// Number of [`ReplicaRole::DecodeOnly`] replicas (≥ 1).
    pub decode: usize,
}

impl DisaggregationConfig {
    /// Explicit pool sizes. Panics unless both are at least 1.
    pub fn by_count(prefill: usize, decode: usize) -> Self {
        assert!(
            prefill >= 1 && decode >= 1,
            "a disaggregated cluster needs at least one replica per pool"
        );
        DisaggregationConfig { prefill, decode }
    }

    /// Splits `budget_units` of hardware budget between the pools:
    /// `prefill_share` (in `[0, 1]`) of the budget buys prefill
    /// devices costing `prefill_unit_cost` each, the rest buys decode
    /// devices costing `decode_unit_cost` each. Each pool gets
    /// `floor(share / unit_cost)` devices, but at least one — so the
    /// realized cost ([`cost_units`](Self::cost_units)) can exceed the
    /// budget only when the budget cannot afford one device per pool.
    pub fn equal_cost(
        budget_units: f64,
        prefill_unit_cost: f64,
        decode_unit_cost: f64,
        prefill_share: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&prefill_share),
            "prefill_share must be in [0, 1]"
        );
        assert!(
            prefill_unit_cost > 0.0 && decode_unit_cost > 0.0,
            "device unit costs must be positive"
        );
        let prefill = ((budget_units * prefill_share) / prefill_unit_cost).floor() as usize;
        let decode = ((budget_units * (1.0 - prefill_share)) / decode_unit_cost).floor() as usize;
        DisaggregationConfig {
            prefill: prefill.max(1),
            decode: decode.max(1),
        }
    }

    /// Total replica count across both pools.
    pub fn total(self) -> usize {
        self.prefill + self.decode
    }

    /// The role vector this config instantiates: `prefill` leading
    /// [`ReplicaRole::PrefillOnly`] entries, then `decode`
    /// [`ReplicaRole::DecodeOnly`] entries.
    pub fn roles(self) -> Vec<ReplicaRole> {
        let mut v = vec![ReplicaRole::PrefillOnly; self.prefill];
        v.resize(self.total(), ReplicaRole::DecodeOnly);
        v
    }

    /// Realized hardware cost of the cluster given per-device costs.
    pub fn cost_units(self, prefill_unit_cost: f64, decode_unit_cost: f64) -> f64 {
        self.prefill as f64 * prefill_unit_cost + self.decode as f64 * decode_unit_cost
    }
}

/// Picks the mix class for a uniform draw in `[0, total_weight)`.
///
/// Floating-point subtraction can leave the residual at or slightly above
/// the final weight even for in-range draws; the final class is the
/// fallback so such draws never silently snap back to `mix[0]`.
pub(crate) fn pick_class(mix: &[RequestClass], draw: f64) -> usize {
    let mut rem = draw;
    for (i, class) in mix.iter().enumerate() {
        if rem < class.weight {
            return i;
        }
        rem -= class.weight;
    }
    mix.len() - 1
}
