//! Engine-level serving tests (fast synthetic backends plus the real
//! simulated device where memory pressure matters).

use super::policy::{
    DeadlineAdmission, DeadlineReadmission, FcfsAdmission, FifoReadmission, LargestKv,
    LeastProgress, LowestPriorityYoungest, PriorityAdmission, ShortestPromptAdmission,
};
use super::*;
use crate::backend::Backend;
use crate::multi_device::DeviceGroup;
use crate::{IanusSystem, SystemConfig};
use ianus_baselines_shim::*;
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::Duration;

/// The serving tests need a fast, exactly-predictable backend too;
/// real-device parity is covered by `tests/backend_parity.rs` at the
/// workspace root (ianus-core cannot depend on ianus-baselines).
mod ianus_baselines_shim {
    use super::*;

    /// Fixed-rate synthetic backend: service time is
    /// `per_token × (input + output)`.
    pub struct FixedRate {
        pub name: &'static str,
        pub per_token: Duration,
    }

    impl Backend for FixedRate {
        fn name(&self) -> &str {
            self.name
        }

        fn service_time(&mut self, _: &ModelConfig, shape: RequestShape) -> Duration {
            Duration::from_ns_f64(self.per_token.as_ns_f64() * (shape.input + shape.output) as f64)
        }

        fn fits(&self, _: &ModelConfig) -> Result<(), crate::capacity::CapacityError> {
            Ok(())
        }
    }
}

fn mix_one(shape: RequestShape) -> Vec<RequestClass> {
    vec![RequestClass::new(shape, 1.0)]
}

fn fixed(name: &'static str, us_per_token: u64) -> FixedRate {
    FixedRate {
        name,
        per_token: Duration::from_us(us_per_token),
    }
}

#[test]
fn deterministic_given_seed() {
    let cfg = ServingConfig::interactive(5.0, 100);
    let mut a = ServingSim::new(cfg.clone())
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .dispatch(DispatchPolicy::LeastLoaded);
    let mut b = ServingSim::new(cfg)
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .dispatch(DispatchPolicy::LeastLoaded);
    let ra = a.run(&ModelConfig::gpt2_m());
    let rb = b.run(&ModelConfig::gpt2_m());
    assert_eq!(ra, rb);
    // And rerunning the same engine (warm memos) changes nothing.
    assert_eq!(a.run(&ModelConfig::gpt2_m()), ra);
}

#[test]
fn policies_are_deterministic_and_distinct_reports_are_seed_stable() {
    for policy in [
        DispatchPolicy::FcfsSingleQueue,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::ShortestExpectedJob,
    ] {
        let build = || {
            ServingSim::new(ServingConfig::interactive(20.0, 300).with_seed(77))
                .cluster(3, |_| fixed("fixed", 100))
                .dispatch(policy)
        };
        let a = build().run(&ModelConfig::gpt2_m());
        let b = build().run(&ModelConfig::gpt2_m());
        assert_eq!(a, b, "{policy:?} not seed-stable");
        assert_eq!(a.completed, 300);
    }
}

#[test]
fn second_replica_improves_tail_latency_and_halves_utilization() {
    let model = ModelConfig::gpt2_m();
    let cfg = ServingConfig {
        arrival_rate_hz: 40.0,
        requests: 400,
        seed: 5,
        mix: mix_one(RequestShape::new(128, 16)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let one = ServingSim::new(cfg.clone())
        .replica(fixed("a", 500))
        .run(&model);
    let two = ServingSim::new(cfg)
        .replica(fixed("a", 500))
        .replica(fixed("b", 500))
        .run(&model);
    assert!(two.sojourn.p99 < one.sojourn.p99);
    assert!(two.utilization < one.utilization);
    assert_eq!(two.per_replica.len(), 2);
    // Work spreads across both replicas.
    assert!(two.per_replica.iter().all(|r| r.completed > 50));
}

#[test]
fn sej_beats_least_loaded_on_heterogeneous_cluster() {
    // One fast and one 8x slower replica: expected-completion routing
    // must not do worse than blind backlog balancing.
    let model = ModelConfig::gpt2_m();
    let cfg = ServingConfig {
        arrival_rate_hz: 8.0,
        requests: 300,
        seed: 11,
        mix: mix_one(RequestShape::new(64, 16)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let hetero = |policy| {
        ServingSim::new(cfg.clone())
            .replica(fixed("fast", 200))
            .replica(fixed("slow", 1600))
            .dispatch(policy)
            .run(&model)
    };
    let ll = hetero(DispatchPolicy::LeastLoaded);
    let sej = hetero(DispatchPolicy::ShortestExpectedJob);
    assert!(
        sej.sojourn.p99.as_ns_f64() <= ll.sojourn.p99.as_ns_f64() * 1.001,
        "SEJ p99 {} vs least-loaded {}",
        sej.sojourn.p99,
        ll.sojourn.p99
    );
    // SEJ routes the bulk of the work to the fast replica.
    assert!(sej.per_replica[0].completed > sej.per_replica[1].completed);
}

#[test]
fn least_loaded_differs_from_fcfs_on_heterogeneous_cluster() {
    // Count-based routing is speed-blind; earliest-free routing is
    // not. On a fast+slow pair the two must produce different
    // schedules.
    let model = ModelConfig::gpt2_m();
    let cfg = ServingConfig {
        arrival_rate_hz: 10.0,
        requests: 400,
        seed: 13,
        mix: mix_one(RequestShape::new(64, 16)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let run = |policy| {
        ServingSim::new(cfg.clone())
            .replica(fixed("fast", 200))
            .replica(fixed("slow", 1600))
            .dispatch(policy)
            .run(&model)
    };
    let fcfs = run(DispatchPolicy::FcfsSingleQueue);
    let ll = run(DispatchPolicy::LeastLoaded);
    assert_ne!(fcfs, ll);
    assert_eq!(fcfs.completed, 400);
    assert_eq!(ll.completed, 400);
}

#[test]
fn memo_is_model_aware_across_runs() {
    // Re-running one engine with a different model must re-price
    // service times, not reuse the previous model's memo.
    let cfg = ServingConfig {
        arrival_rate_hz: 2.0,
        requests: 50,
        seed: 4,
        mix: mix_one(RequestShape::new(128, 8)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let mut sim = ServingSim::new(cfg.clone()).replica(IanusSystem::new(SystemConfig::ianus()));
    let small = sim.run(&ModelConfig::gpt2_m());
    let large = sim.run(&ModelConfig::gpt2_xl());
    assert!(large.mean_service > small.mean_service);
    // And each matches a cold engine for the same model.
    let cold = ServingSim::new(cfg)
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .run(&ModelConfig::gpt2_xl());
    assert_eq!(large, cold);
}

#[test]
fn per_class_percentiles_order_by_request_weight() {
    let model = ModelConfig::gpt2_m();
    let light = RequestShape::new(32, 8);
    let heavy = RequestShape::new(512, 64);
    let cfg = ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 400,
        seed: 3,
        mix: vec![RequestClass::new(light, 0.5), RequestClass::new(heavy, 0.5)],
        workflows: vec![],
        arrivals: Default::default(),
    };
    let r = ServingSim::new(cfg).replica(fixed("a", 100)).run(&model);
    assert_eq!(r.per_class.len(), 2);
    assert_eq!(
        r.per_class[0].completed + r.per_class[1].completed,
        r.completed
    );
    assert!(r.per_class[1].sojourn.p50 > r.per_class[0].sojourn.p50);
}

#[test]
fn zero_requests_yield_empty_report() {
    let cfg = ServingConfig {
        arrival_rate_hz: 1.0,
        requests: 0,
        seed: 0,
        mix: mix_one(RequestShape::new(128, 8)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let r = ServingSim::new(cfg)
        .replica(fixed("a", 100))
        .run(&ModelConfig::gpt2_m());
    assert_eq!(r.completed, 0);
    assert_eq!(r.mean_service, Duration::ZERO);
    assert_eq!(r.throughput_rps, 0.0);
    assert_eq!(r.goodput_rps, 0.0);
    assert_eq!(r.slo_attainment, 1.0);
    assert_eq!(r.utilization, 0.0);
    assert_eq!(r.per_replica[0].name, "a");
    assert_eq!(r.per_class[0].completed, 0);
}

#[test]
fn weighted_pick_residue_falls_back_to_final_class() {
    // Regression: a draw at (or past) the total weight must pick the
    // *last* class, not silently snap back to mix[0].
    let mix = vec![
        RequestClass::new(RequestShape::new(1, 1), 0.1),
        RequestClass::new(RequestShape::new(2, 1), 0.2),
        RequestClass::new(RequestShape::new(3, 1), 0.3),
    ];
    let total: f64 = mix.iter().map(|c| c.weight).sum();
    // 0.1 + 0.2 + 0.3 != 0.6 exactly in binary; whatever the residue,
    // the fallback must be the final index.
    assert_eq!(pick_class(&mix, total), mix.len() - 1);
    assert_eq!(pick_class(&mix, total + 1e-12), mix.len() - 1);
    // In-range draws still resolve normally.
    assert_eq!(pick_class(&mix, 0.05), 0);
    assert_eq!(pick_class(&mix, 0.15), 1);
    assert_eq!(pick_class(&mix, 0.45), 2);
}

#[test]
fn cluster_of_device_groups_serves_large_model() {
    let model = ModelConfig::gpt_6_7b();
    let cfg = ServingConfig {
        arrival_rate_hz: 1.0,
        requests: 60,
        seed: 9,
        mix: mix_one(RequestShape::new(128, 4)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let mut sim = ServingSim::new(cfg)
        .cluster(2, |_| DeviceGroup::new(SystemConfig::ianus(), 2))
        .dispatch(DispatchPolicy::ShortestExpectedJob);
    assert!(sim.fits(&model).is_ok());
    let r = sim.run(&model);
    assert_eq!(r.completed, 60);
    assert_eq!(r.per_replica[0].name, "IANUS x2");
}

#[test]
fn sustainable_rate_brackets_service_rate() {
    let model = ModelConfig::gpt2_m();
    // 2 replicas x 10ms service => cluster capacity 200 req/s.
    let cfg = ServingConfig {
        arrival_rate_hz: 1.0,
        requests: 500,
        seed: 21,
        mix: mix_one(RequestShape::new(99, 1)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let mut sim = ServingSim::new(cfg)
        .replica(fixed("a", 100))
        .replica(fixed("b", 100));
    let rate = sim.sustainable_rate(&model, 1.0, 1000.0);
    // Finite-sample Poisson wiggle: the realized stable rate can land
    // a few percent past the nominal 200 req/s capacity.
    assert!(rate > 100.0 && rate < 220.0, "rate {rate}");
    // The probe restores the configured arrival rate.
    assert_eq!(sim.config().arrival_rate_hz, 1.0);
}

/// Single-replica IANUS engine.
fn single_ianus(system: SystemConfig, cfg: ServingConfig) -> ServingSim {
    ServingSim::new(cfg).replica(IanusSystem::new(system))
}

#[test]
fn light_load_has_no_queueing() {
    let cfg = ServingConfig {
        arrival_rate_hz: 0.5,
        requests: 64,
        seed: 1,
        mix: mix_one(RequestShape::new(128, 8)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let r = single_ianus(SystemConfig::ianus(), cfg).run(&ModelConfig::gpt2_m());
    // Sojourn ~ service at low utilization.
    assert!(r.utilization < 0.05, "{:?}", r.utilization);
    let ratio = r.sojourn.p50.as_ns_f64() / r.mean_service.as_ns_f64();
    assert!(ratio < 1.2, "ratio {ratio}");
    assert!(r.stable());
}

#[test]
fn overload_grows_tail_latency() {
    let shape = RequestShape::new(128, 32);
    let service = IanusSystem::new(SystemConfig::ianus())
        .run_request(&ModelConfig::gpt2_m(), shape)
        .total
        .as_secs_f64();
    // Offer 2x the sustainable rate.
    let cfg = ServingConfig {
        arrival_rate_hz: 2.0 / service,
        requests: 200,
        seed: 2,
        mix: mix_one(shape),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let r = single_ianus(SystemConfig::ianus(), cfg).run(&ModelConfig::gpt2_m());
    assert!(r.utilization > 0.95, "{}", r.utilization);
    assert!(r.sojourn.p99 > r.sojourn.p50);
    assert!(!r.stable());
}

#[test]
fn faster_device_serves_higher_rate() {
    let shape = RequestShape::new(128, 64);
    let cfg = ServingConfig {
        arrival_rate_hz: 3.0,
        requests: 150,
        seed: 3,
        mix: mix_one(shape),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let ianus = single_ianus(SystemConfig::ianus(), cfg.clone()).run(&ModelConfig::gpt2_m());
    let npu_mem = single_ianus(SystemConfig::npu_mem(), cfg).run(&ModelConfig::gpt2_m());
    assert!(ianus.sojourn.p99 < npu_mem.sojourn.p99);
    assert!(ianus.utilization < npu_mem.utilization);
}

#[test]
#[should_panic(expected = "non-empty")]
fn empty_mix_rejected() {
    let cfg = ServingConfig {
        arrival_rate_hz: 1.0,
        requests: 1,
        seed: 0,
        mix: Vec::new(),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let _ = single_ianus(SystemConfig::ianus(), cfg).run(&ModelConfig::gpt2_m());
}

#[test]
#[should_panic(expected = "no replicas")]
fn empty_cluster_rejected() {
    let _ = ServingSim::new(ServingConfig::interactive(1.0, 1)).run(&ModelConfig::gpt2_m());
}

#[test]
#[should_panic(expected = "max_batch")]
fn zero_max_batch_rejected() {
    let _ = ServingSim::new(ServingConfig::interactive(1.0, 1))
        .replica(fixed("a", 100))
        .scheduling(Scheduling::iteration(0))
        .run(&ModelConfig::gpt2_m());
}

/// For the synthetic fixed-rate backend the default prefill/decode
/// decomposition is *exact* (prefill = (in+1)·t, each decode step =
/// t), so batch-1 iteration-level scheduling must reproduce the
/// request-level FCFS schedule to floating-point accuracy.
#[test]
fn iteration_batch1_matches_request_level_exactly_on_fixed_backend() {
    for replicas in [1usize, 2] {
        let cfg = ServingConfig::interactive(18.0, 300).with_seed(42);
        let req = ServingSim::new(cfg.clone())
            .cluster(replicas, |_| fixed("fixed", 150))
            .run(&ModelConfig::gpt2_m());
        let it = ServingSim::new(cfg)
            .cluster(replicas, |_| fixed("fixed", 150))
            .scheduling(Scheduling::iteration(1))
            .run(&ModelConfig::gpt2_m());
        assert_eq!(it.completed, req.completed);
        for (a, b, what) in [
            (it.sojourn.p50, req.sojourn.p50, "p50"),
            (it.sojourn.p95, req.sojourn.p95, "p95"),
            (it.sojourn.p99, req.sojourn.p99, "p99"),
            (it.sojourn.max, req.sojourn.max, "max"),
            (it.mean_service, req.mean_service, "mean service"),
            (it.ttft.p50, req.ttft.p50, "ttft p50"),
            (it.inter_token.p50, req.inter_token.p50, "itl p50"),
        ] {
            let rel = (a.as_ns_f64() - b.as_ns_f64()).abs() / b.as_ns_f64().max(1.0);
            assert!(
                rel < 1e-9,
                "{replicas} replicas, {what}: iteration {a} vs request {b}"
            );
        }
    }
}

/// On the simulated IANUS device the two paths price decode
/// differently (request-level trapezoid-integrates whole requests,
/// iteration-level interpolates per-step grid samples), so batch-1
/// agreement is within a few percent, not exact.
#[test]
fn iteration_batch1_matches_request_level_on_simulated_device() {
    let cfg = ServingConfig::interactive(4.0, 150).with_seed(7);
    let model = ModelConfig::gpt2_m();
    let req = ServingSim::new(cfg.clone())
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .run(&model);
    let it = ServingSim::new(cfg)
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::iteration(1))
        .run(&model);
    assert_eq!(it.completed, req.completed);
    for (a, b, what) in [
        (it.mean_service, req.mean_service, "mean service"),
        (it.sojourn.p50, req.sojourn.p50, "p50 sojourn"),
        (it.sojourn.p95, req.sojourn.p95, "p95 sojourn"),
    ] {
        let rel = (a.as_ns_f64() - b.as_ns_f64()).abs() / b.as_ns_f64();
        assert!(
            rel < 0.05,
            "{what}: iteration {a} vs request {b} ({rel:.3} rel)"
        );
    }
    assert_eq!(it.peak_batch, 1);
}

/// The KV-residency gate must bound the batch below the slot limit
/// when sequences are long: GPT-2 XL KV at (512, 512) is ~314 MB per
/// sequence against ~3.8 GB of post-weight headroom.
#[test]
fn kv_gate_bounds_batch_on_tight_memory() {
    let cfg = ServingConfig {
        arrival_rate_hz: 50.0, // overload so the queue never drains
        requests: 40,
        seed: 11,
        mix: mix_one(RequestShape::new(512, 512)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let r = ServingSim::new(cfg)
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::iteration(32))
        .run(&ModelConfig::gpt2_xl());
    assert_eq!(r.completed, 40);
    assert!(
        r.peak_batch > 1 && r.peak_batch < 32,
        "peak batch {} should be KV-limited below the 32-slot cap",
        r.peak_batch
    );
    assert!(
        r.peak_kv_occupancy > 0.5 && r.peak_kv_occupancy <= 1.0,
        "peak occupancy {}",
        r.peak_kv_occupancy
    );
}

/// The acceptance-criterion regime: on a weight-streaming GPU a
/// decode-heavy mix under continuous batching sustains a strictly
/// higher arrival rate than request-level batch-1 serving, because
/// batched decode amortizes the weight traffic.
#[test]
fn batched_gpu_sustains_higher_rate_on_decode_heavy_mix() {
    use ianus_baselines_like_gpu::WeightStreamGpu;
    let model = ModelConfig::gpt2_m();
    let mut req_sim =
        ServingSim::new(ServingConfig::decode_heavy(0.5, 250)).replica(WeightStreamGpu::default());
    let req_rate = req_sim.sustainable_rate(&model, 0.05, 64.0);
    let mut it_sim = ServingSim::new(ServingConfig::decode_heavy(0.5, 250))
        .replica(WeightStreamGpu::default())
        .scheduling(Scheduling::iteration(8));
    let it_rate = it_sim.sustainable_rate(&model, 0.05, 64.0);
    assert!(
        it_rate >= req_rate * 2.0,
        "continuous batching should multiply the sustainable rate: \
         iteration {it_rate:.2} req/s vs request-level {req_rate:.2} req/s"
    );
}

/// A weight-streaming GPU stand-in with the same *shape* of batching
/// economics as `ianus_baselines::GpuModel` (which ianus-core cannot
/// depend on): decode time = fixed weight-streaming cost + small
/// per-sequence term, so batching amortizes the fixed part. The real
/// GpuModel is exercised end-to-end in `tests/` at the workspace
/// root.
mod ianus_baselines_like_gpu {
    use super::*;

    pub struct WeightStreamGpu {
        /// Weight-streaming cost of one decode iteration (shared
        /// across the batch).
        pub stream: Duration,
        /// Per-sequence attention/dispatch cost per iteration.
        pub per_seq: Duration,
        /// Prefill cost per prompt token.
        pub prefill_per_token: Duration,
    }

    impl Default for WeightStreamGpu {
        fn default() -> Self {
            WeightStreamGpu {
                stream: Duration::from_us(18_000),
                per_seq: Duration::from_us(400),
                prefill_per_token: Duration::from_us(120),
            }
        }
    }

    impl Backend for WeightStreamGpu {
        fn name(&self) -> &str {
            "weight-stream GPU"
        }

        fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
            self.prefill_time(model, shape.input)
                + self.decode_time(model, shape.input, 1) * shape.generation_steps()
        }

        fn fits(&self, _: &ModelConfig) -> Result<(), crate::capacity::CapacityError> {
            Ok(())
        }

        fn prefill_time(&mut self, _: &ModelConfig, tokens: u64) -> Duration {
            Duration::from_ns_f64(self.prefill_per_token.as_ns_f64() * tokens as f64)
        }

        fn decode_time(&mut self, _: &ModelConfig, _past: u64, batch: u32) -> Duration {
            self.stream + self.per_seq * u64::from(batch.max(1))
        }
    }
}

#[test]
fn ttft_and_itl_track_load_in_both_modes() {
    // Light load: TTFT ~ prefill, ITL flat. Heavier load under
    // batching: ITL grows (IANUS serializes the batch) while TTFT
    // stays bounded by admission.
    let model = ModelConfig::gpt2_m();
    let light = ServingSim::new(ServingConfig::interactive(0.5, 80))
        .replica(fixed("a", 100))
        .run(&model);
    // fixed: prefill of (128..512)-token prompts = (tokens+1) * 100us.
    assert!(light.ttft.p50.as_ms_f64() > 10.0);
    assert!(light.ttft.p50 < light.sojourn.p50);
    assert_eq!(light.inter_token.p50, Duration::from_us(100));
    assert_eq!(light.inter_token.p99, Duration::from_us(100));
    assert_eq!(light.inter_token.max, Duration::from_us(100));

    let batched = ServingSim::new(ServingConfig::interactive(30.0, 200))
        .replica(fixed("a", 100))
        .scheduling(Scheduling::iteration(4))
        .run(&model);
    assert!(batched.peak_batch > 1);
    // Serialized batches stretch the iteration time past one token.
    assert!(batched.inter_token.p99 > Duration::from_us(100));
    assert!(batched.ttft.p50 < batched.sojourn.p50);
}

#[test]
fn percentile_max_dominates_tail() {
    // max ≥ p99 ≥ p95 ≥ p50 in every populated distribution the
    // report carries.
    let model = ModelConfig::gpt2_m();
    let r = ServingSim::new(ServingConfig::interactive(25.0, 300))
        .replica(fixed("a", 100))
        .scheduling(Scheduling::iteration(4))
        .run(&model);
    for (label, p) in [
        ("sojourn", &r.sojourn),
        ("ttft", &r.ttft),
        ("itl", &r.inter_token),
    ] {
        assert!(
            p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.max,
            "{label}"
        );
        assert!(p.max > Duration::ZERO, "{label} max unpopulated");
    }
    for c in &r.per_class {
        assert!(c.sojourn.p99 <= c.sojourn.max);
    }
}

/// Chunk sizes at or above every prompt in the mix take the exact
/// same code path as monolithic prefill (one whole-prompt chunk per
/// admission), so the reports must be bit-identical — the
/// "chunk ≥ prompt degenerates to monolithic" contract.
#[test]
fn chunk_at_least_prompt_is_exactly_monolithic() {
    let model = ModelConfig::gpt2_m();
    let run = |prefill_chunk| {
        ServingSim::new(ServingConfig::interactive(16.0, 250).with_seed(9))
            .cluster(2, |_| fixed("fixed", 120))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 4,
                prefill_chunk,
                preempt: false,
            })
            .run(&model)
    };
    let mono = run(None);
    // The longest interactive-mix prompt is 512 tokens.
    assert_eq!(run(Some(512)), mono);
    assert_eq!(run(Some(100_000)), mono);
    // A smaller chunk must actually change the schedule.
    assert_ne!(run(Some(64)), mono);
}

/// Chunked prefill's latency claim: on a long-prompt + interactive
/// mix, chunking the prefill bounds each resident decoder's stall
/// to one chunk instead of one prompt, so the interactive ITL tail
/// collapses at the same arrival rate.
#[test]
fn chunked_prefill_improves_itl_tail_on_long_prompt_mix() {
    // 20 req/s ≈ 70% utilization on the 100 µs/token backend: busy
    // enough that long prefills regularly land on a running decode
    // batch (below ~50% they mostly run alone and both schedules'
    // tails collapse to the short-prompt stall).
    let model = ModelConfig::gpt2_m();
    let run = |prefill_chunk| {
        ServingSim::new(ServingConfig::long_prompt(20.0, 400))
            .replica(fixed("fixed", 100))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 4,
                prefill_chunk,
                preempt: false,
            })
            .run(&model)
    };
    let mono = run(None);
    let chunked = run(Some(128));
    assert!(
        chunked.inter_token.p99.as_ns_f64() < 0.5 * mono.inter_token.p99.as_ns_f64(),
        "chunked ITL p99 {} should be well under monolithic {}",
        chunked.inter_token.p99,
        mono.inter_token.p99
    );
    // The throughput side is untouched: same completions, and the
    // long-prompt class still finishes in comparable time.
    assert_eq!(chunked.completed, mono.completed);
    assert!(
        chunked.sojourn.p99.as_ns_f64() < 1.5 * mono.sojourn.p99.as_ns_f64(),
        "chunking must not blow up sojourn: {} vs {}",
        chunked.sojourn.p99,
        mono.sojourn.p99
    );
}

/// Mixed-iteration decode pricing computes the mean past length in
/// f64 and *rounds* it; integer division used to floor it, biasing
/// decode cost low for every heterogeneous batch.
///
/// Hand-traced scenario on a linear backend (prefill(n) = n ms,
/// decode(past, b) = past·b ms): two (4,3) requests arrive ~µs apart
/// at one replica with max_batch 2. Iterations: prefill #1 (4 ms);
/// prefill #2 + decode #1 at past 4 (8 ms); joint decode at pasts
/// {5, 4} — mean 4.5, **rounds to 5** → 10 ms (a floor prices it 8 ms);
/// final decode of #2 at past 5 (5 ms). So the last request finishes
/// 27 ms after the first arrival with rounding, 25 ms with flooring.
#[test]
fn mixed_batch_decode_mean_rounds_not_floors() {
    struct LinearSteps;
    impl Backend for LinearSteps {
        fn name(&self) -> &str {
            "linear-steps"
        }
        fn service_time(&mut self, _: &ModelConfig, shape: RequestShape) -> Duration {
            let mut t = Backend::prefill_time(self, &ModelConfig::gpt2_m(), shape.input);
            for past in shape.input..shape.input + shape.generation_steps() {
                t += Duration::from_ms(past);
            }
            t
        }
        fn fits(&self, _: &ModelConfig) -> Result<(), crate::capacity::CapacityError> {
            Ok(())
        }
        fn prefill_time(&mut self, _: &ModelConfig, tokens: u64) -> Duration {
            Duration::from_ms(tokens.max(1))
        }
        fn decode_time(&mut self, _: &ModelConfig, past: u64, batch: u32) -> Duration {
            Duration::from_ms(past.max(1)) * u64::from(batch)
        }
    }
    let cfg = ServingConfig {
        arrival_rate_hz: 1e6, // both requests arrive within microseconds
        requests: 2,
        seed: 1,
        mix: mix_one(RequestShape::new(4, 3)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let r = ServingSim::new(cfg)
        .replica(LinearSteps)
        .scheduling(Scheduling::iteration(2))
        .run(&ModelConfig::gpt2_m());
    assert_eq!(r.completed, 2);
    let last = r.sojourn.max.as_ms_f64();
    assert!(
        (26.8..27.001).contains(&last),
        "rounded mean prices the trace at ~27 ms, floored at ~25 ms: got {last}"
    );
}

/// KV pressure on a real memory model: optimistic admission
/// overcommits GPT-2 XL (512,512) sequences on an 8 GB IANUS
/// device, growth forces evictions, and every preempted sequence
/// still completes.
#[test]
fn preemption_triggers_and_all_requests_complete() {
    let cfg = ServingConfig {
        arrival_rate_hz: 50.0, // overload so the queue never drains
        requests: 40,
        seed: 11,
        mix: mix_one(RequestShape::new(512, 512)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let r = ServingSim::new(cfg)
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 32,
            prefill_chunk: None,
            preempt: true,
        })
        .run(&ModelConfig::gpt2_xl());
    assert_eq!(r.completed, 40);
    assert!(r.preemptions > 0, "overcommit never triggered eviction");
    assert!(r.preempted_requests > 0 && r.preempted_requests <= r.completed);
    assert!(r.max_preemptions >= 1);
    assert!(u64::from(r.max_preemptions) <= r.preemptions);
    assert!(
        r.preemptions >= u64::from(r.max_preemptions),
        "totals must dominate the per-request max"
    );
    // Above 1 is possible only via documented tolerated overcommit
    // (lone/all-prefilling batches), which stays small here.
    assert!(
        r.peak_kv_occupancy > 0.5 && r.peak_kv_occupancy < 1.25,
        "peak occupancy {}",
        r.peak_kv_occupancy
    );
    // Optimistic admission packs more sequences than the
    // final-length gate would ever allow.
    let conservative = ServingSim::new(ServingConfig {
        arrival_rate_hz: 50.0,
        requests: 40,
        seed: 11,
        mix: mix_one(RequestShape::new(512, 512)),
        workflows: vec![],
        arrivals: Default::default(),
    })
    .replica(IanusSystem::new(SystemConfig::ianus()))
    .scheduling(Scheduling::iteration(32))
    .run(&ModelConfig::gpt2_xl());
    assert!(
        r.peak_batch > conservative.peak_batch,
        "preemptive admission ({}) should overcommit past the \
         final-length gate ({})",
        r.peak_batch,
        conservative.peak_batch
    );
}

/// Eviction order: batch-tier sequences are swapped out before
/// interactive ones under the default policy, so preemptions
/// concentrate on the batch class.
#[test]
fn eviction_prefers_batch_tier() {
    let shape = RequestShape::new(512, 512);
    let cfg = ServingConfig {
        arrival_rate_hz: 50.0,
        requests: 40,
        seed: 7,
        mix: vec![
            RequestClass::new(shape, 0.5),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    };
    let r = ServingSim::new(cfg)
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 32,
            prefill_chunk: None,
            preempt: true,
        })
        .run(&ModelConfig::gpt2_xl());
    assert_eq!(r.completed, 40);
    assert!(r.preemptions > 0);
    let interactive = &r.per_class[0];
    let batch = &r.per_class[1];
    assert_eq!(
        interactive.preemptions + batch.preemptions,
        r.preemptions,
        "class preemptions must partition the total"
    );
    assert!(
        batch.preemptions > interactive.preemptions,
        "batch tier ({}) should absorb the evictions, not the \
         interactive tier ({})",
        batch.preemptions,
        interactive.preemptions
    );
}

#[test]
fn priority_orders_batch_below_interactive() {
    assert!(Priority::Batch < Priority::Interactive);
    // The default class tier is interactive; the builder overrides.
    let c = RequestClass::new(RequestShape::new(8, 8), 1.0);
    assert_eq!(c.priority, Priority::Interactive);
    assert_eq!(c.slo, None);
    assert_eq!(c.with_priority(Priority::Batch).priority, Priority::Batch);
    let slo = Slo::new(Duration::from_ms(500), Duration::from_ms(40));
    assert_eq!(c.with_slo(slo).slo, Some(slo));
}

#[test]
fn chunked_preemptive_scheduling_is_seed_stable() {
    let build = || {
        ServingSim::new(ServingConfig::long_prompt(30.0, 120).with_seed(77))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 8,
                prefill_chunk: Some(128),
                preempt: true,
            })
    };
    let a = build().run(&ModelConfig::gpt2_m());
    let b = build().run(&ModelConfig::gpt2_m());
    assert_eq!(a, b);
    assert_eq!(a.completed, 120);
}

/// Regression: optimistic (current-length) admission must not let a
/// request whose *final* sequence exceeds the model's positional
/// table slip in — its KV would eventually outgrow `max_seq`, an
/// error no amount of eviction can fix. The final-shape check at
/// admission panics instead, exactly like the non-preemptive gate.
#[test]
#[should_panic(expected = "can never be admitted")]
fn preempt_rejects_sequence_exceeding_max_seq() {
    // GPT-2 M caps at 1024 positions; (512,600) totals 1111.
    let cfg = ServingConfig {
        arrival_rate_hz: 1.0,
        requests: 1,
        seed: 0,
        mix: mix_one(RequestShape::new(512, 600)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let _ = ServingSim::new(cfg)
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 4,
            prefill_chunk: None,
            preempt: true,
        })
        .run(&ModelConfig::gpt2_m());
}

#[test]
#[should_panic(expected = "prefill chunk")]
fn zero_prefill_chunk_rejected() {
    let _ = ServingSim::new(ServingConfig::interactive(1.0, 1))
        .replica(fixed("a", 100))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 4,
            prefill_chunk: Some(0),
            preempt: false,
        })
        .run(&ModelConfig::gpt2_m());
}

#[test]
fn iteration_scheduling_is_seed_stable() {
    let build = || {
        ServingSim::new(ServingConfig::interactive(20.0, 250).with_seed(77))
            .cluster(3, |_| fixed("fixed", 100))
            .scheduling(Scheduling::iteration(4))
    };
    let a = build().run(&ModelConfig::gpt2_m());
    let b = build().run(&ModelConfig::gpt2_m());
    assert_eq!(a, b);
    assert_eq!(a.completed, 250);
}

#[test]
fn sustainable_rate_works_under_iteration_scheduling() {
    let model = ModelConfig::gpt2_m();
    // 100 us/token fixed backend, batch-4 serialized decode: the
    // sustainable rate lands between the batch-1 bound and overload.
    let mut sim = ServingSim::new(ServingConfig {
        arrival_rate_hz: 1.0,
        requests: 300,
        seed: 21,
        mix: mix_one(RequestShape::new(99, 17)),
        workflows: vec![],
        arrivals: Default::default(),
    })
    .replica(fixed("a", 100))
    .scheduling(Scheduling::iteration(4));
    let rate = sim.sustainable_rate(&model, 1.0, 1000.0);
    assert!(rate > 10.0 && rate < 200.0, "rate {rate}");
    assert_eq!(sim.config().arrival_rate_hz, 1.0);
}

// ---------------------------------------------------------------------
// Scheduler-policy API
// ---------------------------------------------------------------------

/// Explicitly installing the default bundle is a no-op: every
/// scheduling mode and knob combination must produce the bit-identical
/// report — the "policies are a pure refactor" contract.
#[test]
fn default_policy_bundle_is_bit_identical_to_implicit() {
    let model = ModelConfig::gpt2_m();
    for scheduling in [
        Scheduling::iteration(4),
        Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: Some(128),
            preempt: true,
        },
    ] {
        let implicit = ServingSim::new(ServingConfig::long_prompt(20.0, 200))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(scheduling)
            .run(&model);
        let explicit = ServingSim::new(ServingConfig::long_prompt(20.0, 200))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(scheduling)
            .policy(
                SchedulerPolicy::default()
                    .with_admission(FcfsAdmission)
                    .with_eviction(LowestPriorityYoungest)
                    .with_readmission(FifoReadmission),
            )
            .run(&model);
        assert_eq!(implicit, explicit, "{scheduling:?}");
    }
}

/// Priority admission moves interactive requests ahead of batch-tier
/// requests in the wait queue, so the interactive tier's sojourn tail
/// improves (and the batch tier pays) relative to FCFS on a mix where
/// both tiers queue.
#[test]
fn priority_admission_favors_interactive_sojourn() {
    let model = ModelConfig::gpt2_m();
    // Saturating load so the wait queue is never empty: admission
    // order, not arrival order, decides who waits.
    let run = |policy: SchedulerPolicy| {
        ServingSim::new(ServingConfig::long_prompt(40.0, 300))
            .replica(fixed("fixed", 100))
            .scheduling(Scheduling::iteration(4))
            .policy(policy)
            .run(&model)
    };
    let fcfs = run(SchedulerPolicy::default());
    let prio = run(SchedulerPolicy::default().with_admission(PriorityAdmission));
    assert_eq!(prio.completed, fcfs.completed);
    // per_class[0] is the interactive tier of the long-prompt mix.
    assert!(
        prio.per_class[0].sojourn.p99 < fcfs.per_class[0].sojourn.p99,
        "priority admission should cut the interactive sojourn tail: {} vs {}",
        prio.per_class[0].sojourn.p99,
        fcfs.per_class[0].sojourn.p99
    );
    assert!(
        prio.per_class[1].sojourn.p99 >= fcfs.per_class[1].sojourn.p99,
        "the batch tier pays for it"
    );
}

/// Shortest-prompt admission front-loads the small requests when the
/// queue is deep, cutting mean sojourn on a bimodal mix (classic SJF).
#[test]
fn shortest_prompt_admission_cuts_median_sojourn() {
    let model = ModelConfig::gpt2_m();
    let run = |policy: SchedulerPolicy| {
        ServingSim::new(ServingConfig::long_prompt(40.0, 300))
            .replica(fixed("fixed", 100))
            .scheduling(Scheduling::iteration(4))
            .policy(policy)
            .run(&model)
    };
    let fcfs = run(SchedulerPolicy::default());
    let sjf = run(SchedulerPolicy::default().with_admission(ShortestPromptAdmission));
    assert!(
        sjf.sojourn.p50 < fcfs.sojourn.p50,
        "SJF should cut the median: {} vs {}",
        sjf.sojourn.p50,
        fcfs.sojourn.p50
    );
}

/// Deadline-EDF admission with a tight SLO on the interactive class
/// orders it ahead of no-deadline batch work; its attainment must not
/// drop below FCFS's.
#[test]
fn edf_admission_tracks_deadlines() {
    let model = ModelConfig::gpt2_m();
    let slo = Slo::new(Duration::from_ms(300), Duration::from_ms(50));
    let mut cfg = ServingConfig::long_prompt(40.0, 300);
    cfg.mix[0] = cfg.mix[0].with_slo(slo); // interactive tier only
    let run = |cfg: &ServingConfig, policy: SchedulerPolicy| {
        ServingSim::new(cfg.clone())
            .replica(fixed("fixed", 100))
            .scheduling(Scheduling::iteration(4))
            .policy(policy)
            .run(&model)
    };
    let fcfs = run(&cfg, SchedulerPolicy::default());
    let edf = run(
        &cfg,
        SchedulerPolicy::default().with_admission(DeadlineAdmission),
    );
    assert_eq!(edf.completed, fcfs.completed);
    assert!(
        edf.per_class[0].slo_attainment >= fcfs.per_class[0].slo_attainment,
        "EDF should not do worse on the deadline class: {} vs {}",
        edf.per_class[0].slo_attainment,
        fcfs.per_class[0].slo_attainment
    );
    // The batch class carries no SLO, so it trivially attains in both.
    assert_eq!(edf.per_class[1].slo_attainment, 1.0);
}

/// All three eviction policies preserve the liveness contract on the
/// KV-pressure scenario, and the alternatives actually change the
/// preemption pattern relative to the default.
#[test]
fn eviction_policies_complete_and_differ() {
    let shape = RequestShape::new(512, 512);
    let build_cfg = || ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 60,
        seed: 0x5EED,
        mix: vec![
            RequestClass::new(shape, 0.5),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    };
    let run = |policy: SchedulerPolicy| {
        ServingSim::new(build_cfg())
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 32,
                prefill_chunk: Some(128),
                preempt: true,
            })
            .policy(policy)
            .run(&ModelConfig::gpt2_xl())
    };
    let default = run(SchedulerPolicy::default());
    let largest = run(SchedulerPolicy::default().with_eviction(LargestKv));
    let least = run(SchedulerPolicy::default().with_eviction(LeastProgress));
    for (name, r) in [
        ("default", &default),
        ("largest-kv", &largest),
        ("least-progress", &least),
    ] {
        assert_eq!(r.completed, 60, "{name}");
        assert!(r.preemptions > 0, "{name}: pressure never triggered");
        let by_class: u64 = r.per_class.iter().map(|c| c.preemptions).sum();
        assert_eq!(by_class, r.preemptions, "{name}");
    }
    // The default is tier-targeted; largest-KV is tier-blind until the
    // tiebreak, so the interactive class absorbs a larger share of the
    // evictions under it.
    let share = |r: &ServingReport| r.per_class[0].preemptions as f64 / r.preemptions as f64;
    assert!(
        share(&largest) > share(&default),
        "largest-KV should spread evictions onto the interactive tier: \
         {:.2} vs default {:.2}",
        share(&largest),
        share(&default)
    );
    assert_ne!(least, default, "least-progress must change the schedule");
}

/// Deadline-aware re-admission restores the tightest-deadline sequence
/// first; on an SLO'd priority mix it must not lose the liveness
/// contract and remains seed-stable.
#[test]
fn deadline_readmission_is_live_and_seed_stable() {
    let shape = RequestShape::new(512, 512);
    let slo = Slo::new(Duration::from_secs_f64(20.0), Duration::from_secs_f64(2.0));
    let build = || {
        let cfg = ServingConfig {
            arrival_rate_hz: 50.0,
            requests: 40,
            seed: 7,
            mix: vec![
                RequestClass::new(shape, 0.5).with_slo(slo),
                RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
            ],
            workflows: vec![],
            arrivals: Default::default(),
        };
        ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 32,
                prefill_chunk: None,
                preempt: true,
            })
            .policy(SchedulerPolicy::default().with_readmission(DeadlineReadmission))
    };
    let a = build().run(&ModelConfig::gpt2_xl());
    let b = build().run(&ModelConfig::gpt2_xl());
    assert_eq!(a, b);
    assert_eq!(a.completed, 40);
    assert!(a.preemptions > 0);
}

// ---------------------------------------------------------------------
// SLO attainment and goodput
// ---------------------------------------------------------------------

/// With no SLOs, attainment is identically 1 and goodput equals
/// throughput; with an impossible SLO, attainment is 0 and goodput 0.
#[test]
fn slo_attainment_bounds() {
    let model = ModelConfig::gpt2_m();
    let r = ServingSim::new(ServingConfig::interactive(5.0, 100))
        .replica(fixed("a", 100))
        .run(&model);
    assert_eq!(r.slo_attainment, 1.0);
    assert!((r.goodput_rps - r.throughput_rps).abs() < 1e-12);

    let impossible = Slo::new(Duration::from_ps(1), Duration::from_ps(1));
    let mut cfg = ServingConfig::interactive(5.0, 100);
    cfg.mix = cfg
        .mix
        .into_iter()
        .map(|c| c.with_slo(impossible))
        .collect();
    let r = ServingSim::new(cfg).replica(fixed("a", 100)).run(&model);
    assert_eq!(r.slo_attainment, 0.0);
    assert_eq!(r.goodput_rps, 0.0);
    for c in &r.per_class {
        assert_eq!(c.slo_attainment, 0.0);
    }

    // A generous SLO is met by everything at light load.
    let generous = Slo::new(Duration::from_secs_f64(60.0), Duration::from_secs_f64(1.0));
    let mut cfg = ServingConfig::interactive(0.5, 50);
    cfg.mix = cfg.mix.into_iter().map(|c| c.with_slo(generous)).collect();
    let r = ServingSim::new(cfg).replica(fixed("a", 100)).run(&model);
    assert_eq!(r.slo_attainment, 1.0);
}

/// Aggregate attainment is the completion-weighted mean of the class
/// attainments, and goodput = throughput × attainment.
#[test]
fn slo_attainment_is_consistent_across_classes() {
    let model = ModelConfig::gpt2_m();
    let tight = Slo::new(Duration::from_ms(60), Duration::from_ms(1));
    let mut cfg = ServingConfig::interactive(10.0, 200);
    cfg.mix[0] = cfg.mix[0].with_slo(tight);
    let r = ServingSim::new(cfg)
        .replica(fixed("a", 100))
        .scheduling(Scheduling::iteration(4))
        .run(&model);
    let weighted: f64 = r
        .per_class
        .iter()
        .map(|c| c.slo_attainment * c.completed as f64)
        .sum::<f64>()
        / r.completed as f64;
    assert!((weighted - r.slo_attainment).abs() < 1e-12);
    assert!((r.goodput_rps - r.throughput_rps * r.slo_attainment).abs() < 1e-9);
}

/// The goodput-criterion rate search is never above the stability
/// search (its predicate is strictly stronger), and collapses to it
/// without SLOs.
#[test]
fn sustainable_goodput_rate_bounded_by_stability_rate() {
    let model = ModelConfig::gpt2_m();
    let slo = Slo::new(Duration::from_ms(120), Duration::from_ms(20));
    let mut cfg = ServingConfig {
        arrival_rate_hz: 1.0,
        requests: 300,
        seed: 21,
        mix: mix_one(RequestShape::new(99, 17)),
        workflows: vec![],
        arrivals: Default::default(),
    };
    cfg.mix[0] = cfg.mix[0].with_slo(slo);
    let mut sim = ServingSim::new(cfg)
        .replica(fixed("a", 100))
        .scheduling(Scheduling::iteration(4));
    let stable = sim.sustainable_rate(&model, 1.0, 1000.0);
    let goodput = sim.sustainable_goodput_rate(&model, 1.0, 1000.0, 0.99);
    assert!(stable > 0.0);
    assert!(
        goodput <= stable,
        "goodput-gated rate {goodput} cannot exceed stability rate {stable}"
    );
    // Without SLOs, the two criteria coincide.
    let mut plain = ServingSim::new(ServingConfig {
        arrival_rate_hz: 1.0,
        requests: 300,
        seed: 21,
        mix: mix_one(RequestShape::new(99, 17)),
        workflows: vec![],
        arrivals: Default::default(),
    })
    .replica(fixed("a", 100))
    .scheduling(Scheduling::iteration(4));
    let a = plain.sustainable_rate(&model, 1.0, 1000.0);
    let b = plain.sustainable_goodput_rate(&model, 1.0, 1000.0, 0.999);
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------

#[test]
fn poisson_process_matches_legacy_inline_recipe() {
    // The lifted `PoissonArrivals` must reproduce the engine's
    // historical inline trace bit for bit: one exponential wait from
    // `gen_range(EPSILON..1.0)` then one class draw from
    // `gen_range(0.0..Σweights)` per arrival, off one seeded StdRng.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let (seed, rate) = (0x5EED_u64, 3.0_f64);
    let weights = [0.6, 0.3, 0.1];
    let total: f64 = weights.iter().sum();
    let mut lifted = PoissonArrivals::new(seed, rate);
    let mut legacy = StdRng::seed_from_u64(seed);
    for _ in 0..256 {
        let d = lifted.next_arrival(&weights);
        let u: f64 = legacy.gen_range(f64::EPSILON..1.0);
        assert_eq!(d.wait.to_bits(), (-u.ln() / rate).to_bits());
        assert_eq!(d.draw.to_bits(), legacy.gen_range(0.0..total).to_bits());
        assert_eq!(d.tenant, 0);
        assert!(!d.in_burst, "plain Poisson never flags a burst");
    }
}

#[test]
fn poisson_run_reports_no_burst_windows() {
    // Without burst-capable arrivals the burst columns are exactly
    // their vacuous values — zero percentiles, attainment 1.0 — so
    // downstream consumers can gate on them without epsilon checks.
    let cfg = ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 50,
        seed: 9,
        mix: mix_one(RequestShape::new(64, 32)),
        workflows: vec![],
        arrivals: ArrivalSpec::Poisson,
    };
    let r = ServingSim::new(cfg)
        .replica(fixed("a", 100))
        .run(&ModelConfig::gpt2_m());
    assert_eq!(r.completed, 50);
    assert_eq!(r.burst_inter_token, LatencyPercentiles::ZERO);
    assert_eq!(r.burst_slo_attainment, 1.0);
    assert_eq!(
        r.tenant_fairness, 1.0,
        "a single-tenant run is trivially fair"
    );
    assert_eq!(r.per_tenant.len(), 1);
}

#[test]
fn zero_completion_tenant_is_zeroed_and_excluded_from_fairness() {
    // A tenant whose share is vanishingly small never places an
    // arrival inside the run window: its row must come back zeroed
    // (empty-window percentiles, vacuous attainment, zero goodput) and
    // the fairness ratio must skip it — one counted tenant means 1.0,
    // never NaN or a division by zero.
    let spec = ArrivalSpec::MultiTenant {
        tenants: vec![
            TenantSpec {
                share: 1.0,
                inner: ArrivalSpec::Poisson,
                mix_weights: None,
            },
            TenantSpec {
                share: 1e-12,
                inner: ArrivalSpec::Poisson,
                mix_weights: None,
            },
        ],
    };
    assert!(spec.validate().is_ok());
    let cfg = ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 40,
        seed: 7,
        mix: mix_one(RequestShape::new(64, 32)),
        workflows: vec![],
        arrivals: spec,
    };
    let r = ServingSim::new(cfg)
        .replica(fixed("a", 100))
        .run(&ModelConfig::gpt2_m());
    assert_eq!(r.completed, 40);
    assert_eq!(r.per_tenant.len(), 2);
    assert_eq!(r.per_tenant[0].completed, 40);
    let starved = &r.per_tenant[1];
    assert_eq!(starved.completed, 0);
    assert_eq!(starved.sojourn, LatencyPercentiles::ZERO);
    assert_eq!(
        starved.slo_attainment, 1.0,
        "attainment over nothing is vacuous"
    );
    assert_eq!(starved.goodput_rps, 0.0);
    assert!(
        r.tenant_fairness.is_finite(),
        "fairness must never be NaN/inf here"
    );
    assert_eq!(
        r.tenant_fairness, 1.0,
        "a single counted tenant leaves no ratio to take"
    );
}
