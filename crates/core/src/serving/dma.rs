//! Two-channel DMA lane clocks for swap and KV-migration traffic.
//!
//! Each replica owns a pair of DMA lane clocks: an **H2D** lane
//! (host-to-device: swap-ins and inbound KV migrations) and a **D2H**
//! lane (device-to-host: swap-outs and outbound migration legs). With
//! `split == true` the lanes advance independently, which is what
//! "swap-in priority" means operationally: an H2D transfer never
//! queues behind D2H traffic, so a preempted sequence's swap-in (or a
//! migrant's arrival) is never delayed by eviction writebacks sharing
//! the link. With `split == false` both directions share one clock —
//! the single-channel model every pre-disaggregation report was
//! pinned against, kept as the default so existing fingerprints hold
//! bit-identically.
//!
//! Within a lane, transfers never reorder: `issue` starts each
//! transfer at `max(now, lane_free)` and advances the lane clock
//! monotonically (debug-asserted). Completion times handed to sorted
//! retirement queues are therefore non-decreasing per lane, which is
//! the invariant the engine's `VecDeque`-based DMA retirement relies
//! on.

/// Direction of a DMA transfer on a replica's host link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaLane {
    /// Host-to-device: swap-ins and inbound KV-migration legs.
    H2D = 0,
    /// Device-to-host: swap-outs and outbound KV-migration legs.
    D2H = 1,
}

/// Per-replica DMA channel clocks: one lane per direction when
/// `split`, one shared clock otherwise (the legacy single-channel
/// model). Times are seconds on the replica's simulation clock.
#[derive(Debug, Clone)]
pub struct DmaChannels {
    lanes: [f64; 2],
    split: bool,
}

impl DmaChannels {
    /// A fresh channel pair with both lanes free at time zero.
    pub fn new(split: bool) -> Self {
        DmaChannels {
            lanes: [0.0; 2],
            split,
        }
    }

    /// Whether H2D and D2H advance on independent clocks.
    pub fn split(&self) -> bool {
        self.split
    }

    /// When the given lane next becomes free. With `split == false`
    /// both lanes report the single shared clock.
    pub fn free_at(&self, lane: DmaLane) -> f64 {
        self.lanes[self.index(lane)]
    }

    /// Issues a transfer of `secs` seconds on `lane`, starting no
    /// earlier than `now`, and returns its completion time. The lane
    /// clock advances monotonically — transfers within a lane never
    /// reorder.
    pub fn issue(&mut self, lane: DmaLane, now: f64, secs: f64) -> f64 {
        let i = self.index(lane);
        let start = now.max(self.lanes[i]);
        let done = start + secs;
        debug_assert!(
            done >= self.lanes[i],
            "DMA lane clock must be monotone: {done} < {}",
            self.lanes[i]
        );
        self.lanes[i] = done;
        done
    }

    fn index(&self, lane: DmaLane) -> usize {
        if self.split {
            lane as usize
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsplit_shares_one_clock() {
        let mut ch = DmaChannels::new(false);
        let out = ch.issue(DmaLane::D2H, 1.0, 2.0);
        assert_eq!(out, 3.0);
        // H2D queues behind the D2H transfer on the shared clock.
        let inn = ch.issue(DmaLane::H2D, 1.0, 1.0);
        assert_eq!(inn, 4.0);
        assert_eq!(ch.free_at(DmaLane::H2D), ch.free_at(DmaLane::D2H));
    }

    #[test]
    fn split_h2d_never_waits_on_d2h() {
        let mut ch = DmaChannels::new(true);
        let out = ch.issue(DmaLane::D2H, 1.0, 5.0);
        assert_eq!(out, 6.0);
        // Swap-in priority: the H2D lane is still free at time 1.
        let inn = ch.issue(DmaLane::H2D, 1.0, 1.0);
        assert_eq!(inn, 2.0);
        assert_eq!(ch.free_at(DmaLane::D2H), 6.0);
        assert_eq!(ch.free_at(DmaLane::H2D), 2.0);
    }

    #[test]
    fn lanes_never_reorder_within_a_channel() {
        let mut ch = DmaChannels::new(true);
        let mut last = 0.0;
        for (now, secs) in [(0.5, 1.0), (0.2, 0.5), (3.0, 0.25), (2.0, 4.0)] {
            let done = ch.issue(DmaLane::H2D, now, secs);
            assert!(done >= last, "H2D completions must be non-decreasing");
            last = done;
        }
    }

    #[test]
    fn issue_starts_no_earlier_than_now() {
        let mut ch = DmaChannels::new(true);
        assert_eq!(ch.issue(DmaLane::D2H, 10.0, 1.0), 11.0);
        // Lane free at 11, but now is 20: starts at 20.
        assert_eq!(ch.issue(DmaLane::D2H, 20.0, 1.0), 21.0);
    }
}
