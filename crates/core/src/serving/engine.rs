//! The cluster engine: replica memoization, both scheduling loops, and
//! the rate-search helpers.

use super::dma::{DmaChannels, DmaLane};
use super::kv::{prefix_key, PagedKv};
use super::policy::{
    EvictionMechanism, LeastLoadedMigration, MigrationPolicy, MigrationTarget, QueuedRequest,
    SchedulerPolicy, SeqView,
};
use super::report::{request_attains, LatencyPercentiles, RunStats};
use super::workflow::{workflow_prefix_key, NodeState, WorkflowRun, WorkflowTemplate};
use super::{
    pick_class, ClassReport, DisaggregationConfig, DispatchPolicy, Priority, ReplicaReport,
    ReplicaRole, RequestClass, Scheduling, ServingConfig, ServingReport, Slo,
};
use crate::backend::Backend;
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::{Duration, SlotQueue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Past-lengths below this are always priced exactly; above it, decode
/// times are sampled on a geometric grid and interpolated.
const DECODE_GRID_START: u64 = 4;

/// Bracketing grid points `(lo, hi]` around `past` on the geometric
/// (×5/4) decode-sampling grid starting at [`DECODE_GRID_START`].
/// Requires `past > DECODE_GRID_START`; returns `lo ≤ past ≤ hi`.
fn decode_grid_bracket(past: u64) -> (u64, u64) {
    let mut lo = DECODE_GRID_START;
    loop {
        let hi = (lo * 5 / 4).max(lo + 1);
        if past <= hi {
            return (lo, hi);
        }
        lo = hi;
    }
}

/// Which core advances the iteration-level loop. Both cores produce
/// **bit-identical** reports — [`StepScan`](CoreMode::StepScan) is the
/// reference implementation the event-driven core is differential-tested
/// against; it exists for auditability, not for use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreMode {
    /// Heap-indexed next-actionable-time selection: one step costs
    /// O(log replicas), idle replicas cost nothing, and DMA retirement
    /// pops a sorted queue instead of scanning it. The default.
    #[default]
    EventDriven,
    /// The historical linear scan: every step walks all replicas and
    /// `min_by`s the in-flight DMA lists.
    StepScan,
}

/// Total order over engine clocks. Clocks are finite and non-negative,
/// where `total_cmp` agrees with IEEE `<`, so heap order reproduces the
/// scan's comparisons exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}
impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Replica {
    backend: Box<dyn Backend>,
    /// Memoized service times, keyed by model and shape so one engine
    /// can serve different models across runs. `ModelConfig::name` is
    /// the model's identity here: two configs sharing a name are
    /// assumed to be the same model (true for the built-in zoo; callers
    /// mutating a config's fields must also rename it).
    service: HashMap<(&'static str, RequestShape), Duration>,
    /// Memoized prefill times in seconds, keyed by (model, tokens).
    prefill: HashMap<(&'static str, u64), f64>,
    /// Memoized decode-iteration times in seconds at grid past-lengths,
    /// keyed by (model, batch, past). Queries between grid points are
    /// piecewise-linearly interpolated — decode latency varies smoothly
    /// with past length (linearly growing KV traffic), so the geometric
    /// grid keeps per-(model, batch) device simulations to a few dozen
    /// while staying accurate to well under a percent.
    decode: HashMap<(&'static str, u32, u64), f64>,
    /// Memoized unloaded batch-1 service (prefill + all decode steps) in
    /// seconds, keyed by (model, shape) — iteration-level `mean_service`.
    ideal: HashMap<(&'static str, RequestShape), f64>,
}

impl Replica {
    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        let key = (model.name, shape);
        if let Some(&d) = self.service.get(&key) {
            return d;
        }
        let d = self.backend.service_time(model, shape);
        self.service.insert(key, d);
        d
    }

    fn prefill_secs(&mut self, model: &ModelConfig, tokens: u64) -> f64 {
        let key = (model.name, tokens);
        if let Some(&s) = self.prefill.get(&key) {
            return s;
        }
        let s = self.backend.prefill_time(model, tokens).as_secs_f64();
        self.prefill.insert(key, s);
        s
    }

    /// Exact (memoized) decode-iteration time at a grid past-length.
    fn decode_exact_secs(&mut self, model: &ModelConfig, past: u64, batch: u32) -> f64 {
        let key = (model.name, batch, past);
        if let Some(&s) = self.decode.get(&key) {
            return s;
        }
        let s = self.backend.decode_time(model, past, batch).as_secs_f64();
        self.decode.insert(key, s);
        s
    }

    /// Decode-iteration time at an arbitrary past-length: exact below
    /// [`DECODE_GRID_START`], interpolated between grid samples above.
    /// The grid is clamped to the model's positional table so sampling
    /// never prices a past the model cannot attend to.
    fn decode_secs(&mut self, model: &ModelConfig, past: u64, batch: u32) -> f64 {
        let past = past.max(1);
        if past <= DECODE_GRID_START {
            return self.decode_exact_secs(model, past, batch);
        }
        let (lo, hi) = decode_grid_bracket(past);
        let hi = hi.min(model.max_seq.saturating_sub(1)).max(past);
        if hi == lo {
            return self.decode_exact_secs(model, lo, batch);
        }
        let a = self.decode_exact_secs(model, lo, batch);
        let b = self.decode_exact_secs(model, hi, batch);
        a + (b - a) * (past - lo) as f64 / (hi - lo) as f64
    }

    /// KV swap cost (one direction) for a sequence holding `tokens` of
    /// context — charged once at swap-out and once at swap-in. Not
    /// memoized: every backend prices it with plain bandwidth
    /// arithmetic.
    fn kv_transfer_secs(&mut self, model: &ModelConfig, tokens: u64) -> f64 {
        self.backend.kv_transfer_time(model, tokens).as_secs_f64()
    }

    /// Grid-interpolated prefill cost at an arbitrary token count:
    /// exact at and below [`DECODE_GRID_START`], interpolated between
    /// geometric grid samples above. This is the *recompute-cost
    /// estimate* behind eviction decisions — pricing every distinct
    /// context length exactly would run a fresh device simulation per
    /// candidate per pressure event. (Actual re-prefill execution is
    /// still priced exactly, through the chunk machinery.)
    fn prefill_est_secs(&mut self, model: &ModelConfig, tokens: u64) -> f64 {
        let tokens = tokens.max(1);
        if tokens <= DECODE_GRID_START {
            return self.prefill_secs(model, tokens);
        }
        let (lo, hi) = decode_grid_bracket(tokens);
        let hi = hi.min(model.max_seq).max(tokens);
        if hi == lo {
            return self.prefill_secs(model, lo);
        }
        let a = self.prefill_secs(model, lo);
        let b = self.prefill_secs(model, hi);
        a + (b - a) * (tokens - lo) as f64 / (hi - lo) as f64
    }

    /// The request's *unloaded batch-1* service time: prefill plus every
    /// decode step alone on the device. This is the iteration-level
    /// analogue of the request-level service time (it matches to within
    /// decode-grid interpolation error), and what `mean_service` reports
    /// in both modes — so [`ServingReport::stable`]'s tail bound is
    /// equally strict whether or not batching stretches residency.
    fn ideal_service_secs(&mut self, model: &ModelConfig, shape: RequestShape) -> f64 {
        let key = (model.name, shape);
        if let Some(&s) = self.ideal.get(&key) {
            return s;
        }
        let mut s = self.prefill_secs(model, shape.input);
        for past in shape.input..shape.input + shape.generation_steps() {
            s += self.decode_secs(model, past, 1);
        }
        self.ideal.insert(key, s);
        s
    }
}

/// Workflow identity of an arrival / active sequence: which node of
/// which instance it serves, plus the denormalized workflow context the
/// policies and completion fan-out need. `None` on every flat-mix
/// request.
#[derive(Debug, Clone, Copy)]
struct WfTag {
    /// Workflow instance index (into the engine's run table).
    inst: usize,
    /// Node index inside the instance's template.
    node: usize,
    /// Prefix-cache key of the lowest-index parent's published KV —
    /// what this node admits with under paged accounting. `None` for
    /// root nodes.
    inherit: Option<u64>,
    /// Absolute end-to-end deadline of the instance.
    deadline: Option<f64>,
    /// Transitive descendant count of the node (admission width).
    blocked_descendants: u32,
}

/// Immutable per-template tables the workflow hooks index at runtime:
/// the templates themselves, each template's first synthetic class
/// index (node `n` of template `t` is class `base[t] + n`), per-node
/// effective shapes, and per-node transitive descendant counts.
struct WfCtx {
    templates: Vec<WorkflowTemplate>,
    base: Vec<usize>,
    shapes: Vec<Vec<RequestShape>>,
    blocked: Vec<Vec<u32>>,
}

/// Everything one workflow-node completion touches outside the
/// completing replica: the instance's run state, the arrival vector and
/// wait queue (released children are appended as new arrivals), the
/// paged pools (prefix registration and expired-key drops), the
/// key→replica home table, and the run counters.
struct WfWorld<'a> {
    ctx: &'a WfCtx,
    runs: &'a mut [WorkflowRun],
    arrivals: &'a mut Vec<Arrival>,
    untaken: &'a mut BTreeSet<(TimeKey, usize)>,
    paged: &'a mut [Option<PagedKv>],
    /// Which replica holds each live workflow prefix key's blocks.
    key_homes: &'a mut HashMap<u64, usize>,
    /// Whether children admit with inherited parent KV (the engine's
    /// `workflow_inheritance` knob gated on paged mode).
    inheritance: bool,
}

impl WfWorld<'_> {
    /// Drops `parent`'s published prefix (instance `inst`) from
    /// whichever replica holds it, if it was ever registered.
    fn drop_expired(&mut self, inst: usize, parent: usize) {
        let key = workflow_prefix_key(inst as u64, parent);
        if let Some(home) = self.key_homes.remove(&key) {
            if let Some(p) = self.paged[home].as_mut() {
                p.drop_prefix(key);
            }
        }
    }

    /// Fans out one completed workflow node: publishes its KV for
    /// inheriting children (must run *before* the caller completes the
    /// sequence in the paged pool, while its table is still live),
    /// settles speculative cancellations, appends newly released
    /// children to the arrival vector at `now`, and records finished
    /// instances. Returns `true` if new arrivals were appended (the
    /// event core then repairs its idle-replica sets against the new
    /// wait-queue head).
    fn on_node_complete(
        &mut self,
        tag: WfTag,
        seq_idx: u64,
        replica: usize,
        now: f64,
        stats: &mut RunStats,
        done: &mut u64,
    ) -> bool {
        let ctx = self.ctx;
        let t = self.runs[tag.inst].template;
        let tpl = &ctx.templates[t];
        // Publish this node's output KV under its per-(instance, node)
        // key while the sequence's block table is still alive. Only
        // nodes with *live* consumers publish — a speculative loser
        // whose children were all cancelled before it finished has
        // nothing left to feed.
        if self.inheritance && self.runs[tag.inst].live_consumers(tag.node) > 0 {
            if let Some(p) = self.paged[replica].as_mut() {
                let key = workflow_prefix_key(tag.inst as u64, tag.node);
                if p.register_prefix(seq_idx, key, tpl.nodes[tag.node].shape.output)
                    .is_some()
                {
                    self.key_homes.insert(key, replica);
                }
            }
        }
        let mut out = self.runs[tag.inst].on_complete(tpl, tag.node);
        let mut settled = out.workflow_done;
        // Waiting nodes cancelled outright never reach the engine; they
        // settle here.
        stats.cancelled_nodes += out.cancelled.len() as u64;
        *done += out.cancelled.len() as u64;
        // Released speculative losers: still queued → cancel in place;
        // already admitted → run to completion (their children are
        // cancelled, so the late completion fans out to nothing).
        for i in 0..out.cancel_released.len() {
            let n = out.cancel_released[i];
            let run = &mut self.runs[tag.inst];
            let ai = run.node_arrival[n].expect("released node has an arrival slot");
            if self.untaken.remove(&(TimeKey(self.arrivals[ai].at), ai)) {
                stats.cancelled_nodes += 1;
                *done += 1;
                settled |= run.confirm_cancel(tpl, n, &mut out);
            } else {
                run.keep_running(n);
            }
        }
        for i in 0..out.expired_keys.len() {
            self.drop_expired(tag.inst, out.expired_keys[i]);
        }
        // Release ready children as fresh arrivals at the completion
        // instant.
        let mut pushed = false;
        for &c in &out.released {
            let run = &mut self.runs[tag.inst];
            let inherit = if self.inheritance {
                tpl.nodes[c]
                    .parents
                    .iter()
                    .min()
                    .map(|&p| workflow_prefix_key(tag.inst as u64, p))
            } else {
                None
            };
            let ai = self.arrivals.len();
            run.node_arrival[c] = Some(ai);
            let deadline = run.deadline;
            self.arrivals.push(Arrival {
                at: now,
                idx: ai as u64,
                class: ctx.base[t] + c,
                shape: ctx.shapes[t][c],
                priority: tpl.priority,
                slo: None,
                wf: Some(WfTag {
                    inst: tag.inst,
                    node: c,
                    inherit,
                    deadline,
                    blocked_descendants: ctx.blocked[t][c],
                }),
            });
            self.untaken.insert((TimeKey(now), ai));
            pushed = true;
        }
        debug_assert!(
            out.released
                .iter()
                .all(|&c| self.runs[tag.inst].state(c) == NodeState::Released),
            "fan-out queued a node that is not in the Released state"
        );
        if settled {
            let run = &self.runs[tag.inst];
            debug_assert!(run.done(), "a settled instance owes no node an outcome");
            stats.workflow_latencies.push(now - run.start);
            if run.deadline.is_none_or(|d| now <= d) {
                stats.workflow_attained += 1;
            }
        }
        pushed
    }
}

/// One generated arrival of the Poisson trace.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    /// Arrival time in seconds.
    at: f64,
    /// Global arrival index (FCFS order; the default eviction's
    /// "youngest").
    idx: u64,
    /// Index into the config's mix.
    class: usize,
    /// The request shape (denormalized from the class).
    shape: RequestShape,
    /// Scheduling tier (denormalized from the class).
    priority: Priority,
    /// The class SLO (denormalized from the class).
    slo: Option<Slo>,
    /// Workflow identity (`None` for flat-mix arrivals).
    wf: Option<WfTag>,
}

impl Arrival {
    /// TTFT deadline in seconds: the class SLO's `arrival + ttft`, or —
    /// for workflow nodes without one — the instance deadline, so
    /// deadline-ordered policies stay meaningful in workflow mode.
    fn deadline(&self) -> Option<f64> {
        self.slo
            .map(|s| self.at + s.ttft.as_secs_f64())
            .or(self.wf.and_then(|w| w.deadline))
    }

    /// The admission-policy view of this waiting request.
    fn queued_view(&self) -> QueuedRequest {
        QueuedRequest {
            shape: self.shape,
            arrival: self.at,
            arrival_idx: self.idx,
            priority: self.priority,
            deadline: self.deadline(),
            workflow_deadline: self.wf.and_then(|w| w.deadline),
            blocked_descendants: self.wf.map_or(0, |w| w.blocked_descendants),
        }
    }
}

/// One sequence resident in a replica's batch (prefilling or decoding)
/// or parked in its swap queue.
#[derive(Debug, Clone)]
struct ActiveSeq {
    shape: RequestShape,
    /// Arrival time (for sojourn accounting).
    arrival: f64,
    /// Global arrival index (admission order; the default eviction's
    /// "youngest").
    idx: u64,
    /// Its unloaded batch-1 service time (for `mean_service`).
    service: f64,
    /// Index into the config's mix.
    class: usize,
    /// Scheduling tier.
    priority: Priority,
    /// The class SLO (for attainment scoring and deadline policies).
    slo: Option<Slo>,
    /// Prompt tokens prefilled so far; the sequence is *prefilling*
    /// until this reaches [`prefill_target`](Self::prefill_target),
    /// then *decoding*.
    prefilled: u64,
    /// How many tokens of context the current prefill must build:
    /// `shape.input` for the initial prompt. A recompute-based eviction
    /// resets this to the context length at eviction (prompt plus
    /// tokens generated so far) — the re-prefill rebuilds the whole
    /// context through the same chunk machinery.
    prefill_target: u64,
    /// Tokens currently in its KV cache (prefilled prompt + generated).
    past: u64,
    /// Decode iterations left.
    remaining: u64,
    /// When its previous token was emitted. Inter-token samples are
    /// gaps between consecutive emissions, so a co-admitted request's
    /// prefill chunk stalling the batch — or a swap-out dwell — shows
    /// up in the resident sequences' ITL, not just in sojourn.
    last_token: f64,
    /// Measured time-to-first-token in seconds (set when the prefill
    /// completes; every completion passes through that point first).
    ttft: f64,
    /// This sequence's own inter-token gaps (for per-request SLO
    /// attainment; the same samples also land in the global ITL pool).
    gaps: Vec<f64>,
    /// KV evictions suffered so far (swap-outs plus recompute drops).
    preemptions: u32,
    /// Recompute-based evictions suffered so far (subset of
    /// `preemptions`).
    recomputes: u32,
    /// Monotone swap-out sequence number (0 until first preempted) —
    /// what FIFO re-admission orders by.
    swap_epoch: u64,
    /// Bytes this sequence currently holds in the replica's host pool
    /// (0 while resident, and always 0 for recompute evictions).
    hosted_bytes: u64,
    /// Set when a recompute re-prefill completed *this* iteration: the
    /// rebuild produces no new token, so the decode advance must skip
    /// the sequence once without resetting its inter-token clock (the
    /// eviction dwell belongs in its ITL, like a swap dwell does).
    just_prefilled: bool,
    /// Prompt tokens served out of the prefix cache (paged mode only;
    /// always 0 under contiguous accounting). These blocks are shared
    /// with the cache, so evictions neither move nor drop them and
    /// recompute re-prefills restart from here, not from zero.
    shared_tokens: u64,
    /// Whether admission hit the prefix cache (routes the TTFT sample
    /// into the cache-hit pool instead of the cold one).
    cache_hit: bool,
    /// Workflow identity (`None` for flat-mix sequences). Completion
    /// fans out through this to release children and decide races.
    wf: Option<WfTag>,
}

impl ActiveSeq {
    /// Whether the context is fully (re)built (the sequence decodes).
    fn decoding(&self) -> bool {
        self.prefilled >= self.prefill_target
    }

    /// TTFT deadline in seconds: the class SLO's `arrival + ttft`, or —
    /// for workflow nodes without one — the instance deadline.
    fn deadline(&self) -> Option<f64> {
        self.slo
            .map(|s| self.arrival + s.ttft.as_secs_f64())
            .or(self.wf.and_then(|w| w.deadline))
    }

    /// The eviction/re-admission policy view of this sequence, with
    /// the engine-supplied eviction-cost estimates filled in.
    fn view(
        &self,
        swap_secs: f64,
        recompute_secs: f64,
        kv_blocks: u64,
        readmit_delay_secs: f64,
    ) -> SeqView {
        SeqView {
            shape: self.shape,
            arrival: self.arrival,
            arrival_idx: self.idx,
            priority: self.priority,
            deadline: self.deadline(),
            kv_tokens: self.past,
            prefilled: self.prefilled,
            generated: self.shape.generation_steps() - self.remaining,
            remaining: self.remaining,
            preemptions: self.preemptions,
            swap_epoch: self.swap_epoch,
            swap_secs,
            recompute_secs,
            kv_blocks,
            shared_tokens: self.shared_tokens,
            readmit_delay_secs,
            workflow_deadline: self.wf.and_then(|w| w.deadline),
            blocked_descendants: self.wf.map_or(0, |w| w.blocked_descendants),
        }
    }

    /// The sequence's KV footprint *right now*, as a shape whose
    /// [`RequestShape::total_tokens`] is `tokens`: the currency of the
    /// optimistic (current-length) residency checks under preemption.
    /// The tokens ride in `output` with a one-token `input` so
    /// [`check_batch`](crate::capacity::check_batch)'s activation term
    /// prices a single live decode row, not a phantom `tokens`-wide
    /// prefill.
    fn kv_shape(tokens: u64) -> RequestShape {
        RequestShape {
            input: 1,
            output: tokens.max(1),
        }
    }
}

/// Builder-style cluster serving engine over [`Backend`] replicas.
///
/// Construct with a [`ServingConfig`], add one or more replicas, pick a
/// [`DispatchPolicy`] (request-level) or a [`SchedulerPolicy`]
/// (iteration-level), then [`run`](Self::run). The engine owns its
/// replicas; service-time memos survive across runs, so rate sweeps and
/// [`sustainable_rate`](Self::sustainable_rate) searches re-simulate no
/// device.
pub struct ServingSim {
    cfg: ServingConfig,
    dispatch: DispatchPolicy,
    scheduling: Scheduling,
    scheduler: SchedulerPolicy,
    replicas: Vec<Replica>,
    /// Host-pool override: `None` defers to each replica's
    /// [`Backend::host_kv_bytes`]; `Some(None)` forces unbounded;
    /// `Some(Some(b))` forces a `b`-byte pool on every replica.
    host_kv_override: Option<Option<u64>>,
    /// Whether swap DMA overlaps compute (off by default — serialized
    /// transfers, the historical behavior).
    overlap_dma: bool,
    /// Paged-KV block size in tokens; 0 (the default) keeps the legacy
    /// contiguous accounting.
    kv_block: u64,
    /// Which iteration-level core advances the loop (bit-identical
    /// either way; see [`CoreMode`]).
    core_mode: CoreMode,
    /// Divergence-guard override: `None` defers to the context (the
    /// auto bound during rate probes, off in direct runs);
    /// `Some(None)` forces the guard off; `Some(Some(d))` aborts a run
    /// when the arrived-but-unadmitted backlog exceeds `d` requests.
    divergence: Option<Option<u64>>,
    /// Set while [`sustainable_rate_where`](Self::sustainable_rate_where)
    /// probes rates, enabling the automatic divergence bound.
    probe_divergence: bool,
    /// Per-replica [`ReplicaRole`]s, aligned with `replicas`
    /// (all-`Unified` outside disaggregated runs).
    roles: Vec<ReplicaRole>,
    /// Destination choice for prefill→decode KV migrations.
    migration: std::sync::Arc<dyn MigrationPolicy + Send + Sync>,
    /// Whether swap/migration DMA runs on split H2D/D2H lanes even in
    /// all-`Unified` clusters (disaggregated runs always split). Off by
    /// default — the single-channel model every pin was captured on.
    two_channel: bool,
    /// Whether workflow children inherit their parent's registered KV
    /// blocks as a shared prefix in paged mode (on by default; the
    /// off switch exists so experiments can measure the cold
    /// re-prefill baseline on the same trace).
    workflow_inheritance: bool,
}

impl ServingSim {
    /// Starts a simulation builder with no replicas, FCFS dispatch,
    /// request-level scheduling, and the default [`SchedulerPolicy`].
    pub fn new(cfg: ServingConfig) -> Self {
        ServingSim {
            cfg,
            dispatch: DispatchPolicy::FcfsSingleQueue,
            scheduling: Scheduling::RequestLevel,
            scheduler: SchedulerPolicy::default(),
            replicas: Vec::new(),
            host_kv_override: None,
            overlap_dma: false,
            kv_block: 0,
            core_mode: CoreMode::default(),
            divergence: None,
            probe_divergence: false,
            roles: Vec::new(),
            migration: std::sync::Arc::new(LeastLoadedMigration),
            two_channel: false,
            workflow_inheritance: true,
        }
    }

    /// Adds one replica backend.
    pub fn replica(self, backend: impl Backend + 'static) -> Self {
        self.boxed_replica(Box::new(backend))
    }

    /// Adds one replica backend with an explicit [`ReplicaRole`]
    /// (iteration-level scheduling only; see the
    /// [module docs](super#disaggregated-prefilldecode)).
    pub fn replica_with_role(self, backend: impl Backend + 'static, role: ReplicaRole) -> Self {
        let mut s = self.boxed_replica(Box::new(backend));
        *s.roles.last_mut().expect("boxed_replica pushed a role") = role;
        s
    }

    /// Adds an already-boxed replica (for heterogeneous `dyn` lists).
    pub fn boxed_replica(mut self, backend: Box<dyn Backend>) -> Self {
        self.replicas.push(Replica {
            backend,
            service: HashMap::new(),
            prefill: HashMap::new(),
            decode: HashMap::new(),
            ideal: HashMap::new(),
        });
        self.roles.push(ReplicaRole::Unified);
        self
    }

    /// Adds `n` replicas built by `make(index)`.
    pub fn cluster<B: Backend + 'static>(
        mut self,
        n: usize,
        mut make: impl FnMut(usize) -> B,
    ) -> Self {
        for i in 0..n {
            self = self.replica(make(i));
        }
        self
    }

    /// Adds a disaggregated cluster per `cfg`: `cfg.prefill`
    /// [`ReplicaRole::PrefillOnly`] replicas built by `prefill(index)`,
    /// then `cfg.decode` [`ReplicaRole::DecodeOnly`] replicas built by
    /// `decode(index)` (each index counts within its own pool).
    /// Requires iteration-level scheduling at [`run`](Self::run) time.
    pub fn disaggregated<P: Backend + 'static, D: Backend + 'static>(
        mut self,
        cfg: DisaggregationConfig,
        mut prefill: impl FnMut(usize) -> P,
        mut decode: impl FnMut(usize) -> D,
    ) -> Self {
        for i in 0..cfg.prefill {
            self = self.replica_with_role(prefill(i), ReplicaRole::PrefillOnly);
        }
        for i in 0..cfg.decode {
            self = self.replica_with_role(decode(i), ReplicaRole::DecodeOnly);
        }
        self
    }

    /// The per-replica roles, in replica order.
    pub fn roles(&self) -> &[ReplicaRole] {
        &self.roles
    }

    /// Installs the [`MigrationPolicy`] choosing which decode replica
    /// receives each prefill→decode handoff
    /// ([`LeastLoadedMigration`] by default). Only consulted when the
    /// cluster has [`ReplicaRole::PrefillOnly`] replicas.
    pub fn migration(mut self, policy: impl MigrationPolicy + Send + Sync + 'static) -> Self {
        self.migration = std::sync::Arc::new(policy);
        self
    }

    /// In-place form of [`migration`](Self::migration) for warm engines.
    pub fn set_migration(&mut self, policy: impl MigrationPolicy + Send + Sync + 'static) {
        self.migration = std::sync::Arc::new(policy);
    }

    /// Forces **two-channel DMA** (split H2D/D2H lanes — swap-ins never
    /// queue behind swap-outs; see [`super::dma`]) even in
    /// all-`Unified` clusters. Disaggregated clusters always run split
    /// lanes; off by default otherwise, where both directions share one
    /// channel clock (the historical single-channel model, preserved
    /// bit-identically).
    pub fn two_channel_dma(mut self, split: bool) -> Self {
        self.two_channel = split;
        self
    }

    /// In-place form of [`two_channel_dma`](Self::two_channel_dma) for
    /// warm engines.
    pub fn set_two_channel_dma(&mut self, split: bool) {
        self.two_channel = split;
    }

    /// Enables (the default) or disables **workflow KV inheritance**:
    /// in paged mode ([`kv_block`](Self::kv_block)), a completing
    /// workflow node registers its KV under a per-(instance, node)
    /// prefix key, and each child admits with its lowest-index
    /// parent's blocks mapped copy-on-write as a shared prefix —
    /// skipping the re-prefill of context the cluster already holds.
    /// Cross-replica admissions miss and prefill cold (KV does not
    /// teleport between replicas). Off, every node prefills its full
    /// effective prompt from scratch — the control arm for measuring
    /// the inheritance win. No effect on flat (non-workflow) runs or
    /// in contiguous mode.
    pub fn workflow_inheritance(mut self, inherit: bool) -> Self {
        self.workflow_inheritance = inherit;
        self
    }

    /// In-place form of
    /// [`workflow_inheritance`](Self::workflow_inheritance) for warm
    /// engines.
    pub fn set_workflow_inheritance(&mut self, inherit: bool) {
        self.workflow_inheritance = inherit;
    }

    /// Sets the dispatch policy (request-level scheduling only).
    pub fn dispatch(mut self, policy: DispatchPolicy) -> Self {
        self.dispatch = policy;
        self
    }

    /// Sets the scheduling granularity (builder style).
    pub fn scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Changes the scheduling granularity in place, keeping replicas and
    /// their memos — the cheap way to compare modes on one engine.
    pub fn set_scheduling(&mut self, scheduling: Scheduling) {
        self.scheduling = scheduling;
    }

    /// Installs a [`SchedulerPolicy`] bundle (iteration-level
    /// scheduling; request-level routing stays with
    /// [`dispatch`](Self::dispatch)). The default bundle reproduces the
    /// historical hard-wired scheduler bit-identically.
    pub fn policy(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Swaps the policy bundle in place, keeping replicas and their
    /// memos — the cheap way to sweep the policy space on one engine
    /// (the device costs do not depend on the policy).
    pub fn set_policy(&mut self, scheduler: SchedulerPolicy) {
        self.scheduler = scheduler;
    }

    /// The installed policy bundle.
    pub fn scheduler_policy(&self) -> &SchedulerPolicy {
        &self.scheduler
    }

    /// Overrides every replica's host-side KV swap pool: `Some(bytes)`
    /// forces a finite pool of that size, `None` forces an unbounded
    /// pool. Without this override each replica uses its backend's own
    /// [`Backend::host_kv_bytes`]. The pool bounds how much swapped KV
    /// can live host-side at once; a swap-out that would overflow it
    /// falls back to recompute-based eviction.
    pub fn host_kv_pool(mut self, bytes: Option<u64>) -> Self {
        self.host_kv_override = Some(bytes);
        self
    }

    /// In-place form of [`host_kv_pool`](Self::host_kv_pool) for warm
    /// engines.
    pub fn set_host_kv_pool(&mut self, bytes: Option<u64>) {
        self.host_kv_override = Some(bytes);
    }

    /// Enables (or disables) **overlapped swap DMA**: each replica gets
    /// a DMA-channel clock, swap transfers run on it concurrently with
    /// compute, and the batch only stalls when it actually needs the
    /// data or the memory — a swap-out frees device KV at DMA
    /// *completion* (the iteration waits if it needs those bytes
    /// sooner) and a swap-in's completion gates the sequence's
    /// re-entry into the batch while decode continues around it. Off by
    /// default: transfers serialize with compute on the replica clock,
    /// the historical behavior.
    pub fn overlap_dma(mut self, overlap: bool) -> Self {
        self.overlap_dma = overlap;
        self
    }

    /// In-place form of [`overlap_dma`](Self::overlap_dma) for warm
    /// engines.
    pub fn set_overlap_dma(&mut self, overlap: bool) {
        self.overlap_dma = overlap;
    }

    /// Switches iteration-level KV accounting to **paged blocks** of
    /// `tokens` tokens each (0, the default, keeps the legacy
    /// contiguous accounting, bit-identically). Each replica's block
    /// budget comes from its backend's
    /// [`Backend::kv_budget_bytes`](crate::backend::Backend::kv_budget_bytes);
    /// a backend that reports no budget stays contiguous. Paged mode
    /// gates admission and pressure on free *blocks*, shares
    /// full-block prompt prefixes copy-on-write across requests of the
    /// same class (a [`RequestClass::prefix_tokens`](super::RequestClass)
    /// above 0 opts the class in), and moves only a sequence's
    /// *unshared* tokens on swap or recompute.
    pub fn kv_block(mut self, tokens: u64) -> Self {
        self.kv_block = tokens;
        self
    }

    /// In-place form of [`kv_block`](Self::kv_block) for warm engines.
    pub fn set_kv_block(&mut self, tokens: u64) {
        self.kv_block = tokens;
    }

    /// Selects the iteration-level engine core (builder style). The
    /// default [`CoreMode::EventDriven`] and the reference
    /// [`CoreMode::StepScan`] produce bit-identical reports; the knob
    /// exists for differential testing and benchmarking the cores
    /// against each other.
    pub fn core_mode(mut self, mode: CoreMode) -> Self {
        self.core_mode = mode;
        self
    }

    /// In-place form of [`core_mode`](Self::core_mode) for warm engines.
    pub fn set_core_mode(&mut self, mode: CoreMode) {
        self.core_mode = mode;
    }

    /// Sets the **divergence guard** (builder style): `Some(d)` aborts
    /// an iteration-level run once more than `d` arrived requests are
    /// waiting unadmitted — the run is hopelessly overloaded, and its
    /// report comes back with [`ServingReport::diverged`] set (never
    /// [`stable`](ServingReport::stable)) covering only the simulated
    /// prefix. `None` disables the guard everywhere, including inside
    /// rate probes.
    ///
    /// Without this override, the guard is off in direct
    /// [`run`](Self::run)s (every configured request completes) and an
    /// automatic bound — generous enough that any run it stops would
    /// have failed the stability predicate anyway — protects
    /// [`sustainable_rate_where`](Self::sustainable_rate_where) probes
    /// from simulating the full horizon of a diverged queue.
    pub fn divergence_depth(mut self, depth: Option<u64>) -> Self {
        self.divergence = Some(depth);
        self
    }

    /// In-place form of [`divergence_depth`](Self::divergence_depth)
    /// for warm engines.
    pub fn set_divergence_depth(&mut self, depth: Option<u64>) {
        self.divergence = Some(depth);
    }

    /// A deep copy of this engine — replicas (via
    /// [`Backend::clone_box`]), their warm service memos, and every
    /// knob — or `None` if any replica's backend does not support
    /// cloning. Clones are what [`sweep_rates`](Self::sweep_rates) and
    /// the parallel [`sustainable_rate_where`](Self::sustainable_rate_where)
    /// hand to scoped threads; a run on a clone produces exactly the
    /// report the original would (runs depend only on the config and
    /// the backends' deterministic costs, never on memo warmth).
    pub fn try_clone(&self) -> Option<ServingSim> {
        let mut replicas = Vec::with_capacity(self.replicas.len());
        for r in &self.replicas {
            replicas.push(Replica {
                backend: r.backend.clone_box()?,
                service: r.service.clone(),
                prefill: r.prefill.clone(),
                decode: r.decode.clone(),
                ideal: r.ideal.clone(),
            });
        }
        Some(ServingSim {
            cfg: self.cfg.clone(),
            dispatch: self.dispatch,
            scheduling: self.scheduling,
            scheduler: self.scheduler.clone(),
            replicas,
            host_kv_override: self.host_kv_override,
            overlap_dma: self.overlap_dma,
            kv_block: self.kv_block,
            core_mode: self.core_mode,
            divergence: self.divergence,
            probe_divergence: self.probe_divergence,
            roles: self.roles.clone(),
            migration: self.migration.clone(),
            two_channel: self.two_channel,
            workflow_inheritance: self.workflow_inheritance,
        })
    }

    /// Number of replicas added so far.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The current configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Changes the arrival rate in place, keeping replicas and their
    /// service memos. This is the canonical rate-sweep entry: the first
    /// [`run`](Self::run) prices every (model, shape/step) the mix
    /// needs on each replica, after which every further rate is a
    /// queueing-only pass (no device simulation), each re-seeding the
    /// same arrival trace *shape* at the new rate.
    ///
    /// # Examples
    ///
    /// ```
    /// use ianus_core::serving::{ServingConfig, ServingSim};
    /// use ianus_core::{IanusSystem, SystemConfig};
    /// use ianus_model::ModelConfig;
    ///
    /// let model = ModelConfig::gpt2_m();
    /// let mut sim = ServingSim::new(ServingConfig::interactive(1.0, 150))
    ///     .replica(IanusSystem::new(SystemConfig::ianus()));
    /// let mut last_p99 = 0.0;
    /// for rate in [1.0, 4.0, 16.0] {
    ///     sim.set_rate(rate); // warm memos after the first run
    ///     let r = sim.run(&model);
    ///     assert_eq!(r.completed, 150);
    ///     assert!(r.sojourn.p99.as_ms_f64() >= last_p99);
    ///     last_p99 = r.sojourn.p99.as_ms_f64();
    /// }
    /// assert_eq!(sim.config().arrival_rate_hz, 16.0);
    /// ```
    pub fn set_rate(&mut self, arrival_rate_hz: f64) {
        self.cfg.arrival_rate_hz = arrival_rate_hz;
    }

    /// Checks that `model` is resident on every replica.
    ///
    /// # Errors
    ///
    /// The first replica's [`CapacityError`](crate::capacity::CapacityError),
    /// tagged with its index, if any replica cannot hold the model.
    pub fn fits(&self, model: &ModelConfig) -> Result<(), (usize, crate::capacity::CapacityError)> {
        for (i, r) in self.replicas.iter().enumerate() {
            r.backend.fits(model).map_err(|e| (i, e))?;
        }
        Ok(())
    }

    /// Runs the simulation for `model` and reports cluster statistics.
    ///
    /// Zero configured requests yield an all-zero report rather than a
    /// division by zero.
    ///
    /// # Panics
    ///
    /// Panics if no replicas were added, the mix is empty, a weight is
    /// non-positive, the arrival rate is non-positive, an
    /// iteration-level `max_batch` or `prefill_chunk` is zero, or
    /// (iteration-level only) a mix shape can never be admitted on some
    /// replica even with an empty batch.
    pub fn run(&mut self, model: &ModelConfig) -> ServingReport {
        assert!(!self.replicas.is_empty(), "serving cluster has no replicas");
        let workflow_mode = !self.cfg.workflows.is_empty();
        if workflow_mode {
            assert!(
                self.cfg.mix.is_empty(),
                "a config drives either a flat mix or workflows, not both"
            );
            assert!(
                self.cfg.workflows.iter().all(|t| t.weight > 0.0),
                "workflow weights must be positive"
            );
            for (i, t) in self.cfg.workflows.iter().enumerate() {
                if let Err(e) = t.validate() {
                    panic!("workflow template {i} is invalid: {e}");
                }
            }
        } else {
            assert!(!self.cfg.mix.is_empty(), "request mix must be non-empty");
            assert!(
                self.cfg.mix.iter().all(|c| c.weight > 0.0),
                "weights must be positive"
            );
        }
        assert!(
            self.cfg.arrival_rate_hz > 0.0,
            "arrival rate must be positive"
        );
        if self.cfg.requests == 0 {
            return ServingReport::empty(
                self.replicas
                    .iter()
                    .zip(&self.roles)
                    .map(|(r, &role)| (r.backend.name().to_string(), role))
                    .collect(),
                &self.effective_mix(),
            );
        }
        let stats = match self.scheduling {
            Scheduling::RequestLevel => {
                assert!(
                    self.roles.iter().all(|&ro| ro == ReplicaRole::Unified),
                    "replica roles (disaggregation) require iteration-level scheduling"
                );
                assert!(
                    !workflow_mode,
                    "workflow mixes require iteration-level scheduling"
                );
                self.run_request_level(model)
            }
            Scheduling::IterationLevel {
                max_batch,
                prefill_chunk,
                preempt,
            } => {
                assert!(max_batch >= 1, "max_batch must be at least 1");
                assert!(prefill_chunk != Some(0), "prefill chunk must be positive");
                assert!(
                    self.roles.iter().any(|&ro| ro != ReplicaRole::DecodeOnly),
                    "every replica is decode-only: arrivals could never be admitted"
                );
                self.run_iteration_level(model, max_batch, prefill_chunk, preempt)
            }
        };
        self.assemble(stats)
    }

    /// Seeded Poisson arrivals of the weighted mix. The draw order (one
    /// inter-arrival draw, then one class draw, per request) is shared by
    /// both scheduling modes, so a seed denotes the *same* trace in both.
    fn generate_arrivals(&self) -> Vec<Arrival> {
        let total_weight: f64 = self.cfg.mix.iter().map(|c| c.weight).sum();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut now = 0.0f64;
        (0..self.cfg.requests)
            .map(|idx| {
                // Exponential inter-arrival.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                now += -u.ln() / self.cfg.arrival_rate_hz;
                let class = pick_class(&self.cfg.mix, rng.gen_range(0.0..total_weight));
                Arrival {
                    at: now,
                    idx,
                    class,
                    shape: self.cfg.mix[class].shape,
                    priority: self.cfg.mix[class].priority,
                    slo: self.cfg.mix[class].slo,
                    wf: None,
                }
            })
            .collect()
    }

    /// The request-class list the run's per-class accounting is keyed
    /// by: the flat mix verbatim, or — under a workflow mix — one
    /// synthetic class per (template, node) in template order, shaped
    /// by the node's *effective* prompt (own prompt plus every
    /// parent's output). Synthetic classes carry the template's
    /// priority, no SLO (workflow deadlines are whole-instance, not
    /// per-node), and no class-level prefix (workflow nodes share KV
    /// through per-instance inheritance keys instead).
    fn effective_mix(&self) -> Vec<RequestClass> {
        if self.cfg.workflows.is_empty() {
            return self.cfg.mix.clone();
        }
        let mut mix = Vec::new();
        for tpl in &self.cfg.workflows {
            for (node, eff) in tpl.effective_inputs().into_iter().enumerate() {
                mix.push(RequestClass {
                    shape: RequestShape {
                        input: eff,
                        output: tpl.nodes[node].shape.output,
                    },
                    weight: tpl.weight,
                    priority: tpl.priority,
                    slo: None,
                    prefix_tokens: 0,
                });
            }
        }
        mix
    }

    /// Per-template tables the workflow hooks index at runtime, all
    /// derived once from the validated templates.
    fn workflow_ctx(&self) -> WfCtx {
        let templates = self.cfg.workflows.clone();
        let mut base = Vec::with_capacity(templates.len());
        let mut next = 0usize;
        for tpl in &templates {
            base.push(next);
            next += tpl.node_count();
        }
        let shapes = templates
            .iter()
            .map(|tpl| {
                tpl.effective_inputs()
                    .into_iter()
                    .enumerate()
                    .map(|(node, eff)| RequestShape {
                        input: eff,
                        output: tpl.nodes[node].shape.output,
                    })
                    .collect()
            })
            .collect();
        let blocked = templates.iter().map(|t| t.blocked_descendants()).collect();
        WfCtx {
            templates,
            base,
            shapes,
            blocked,
        }
    }

    /// Seeded Poisson arrivals of the weighted *workflow* mix: one
    /// inter-arrival draw, then one template draw, per instance —
    /// mirroring [`generate_arrivals`](Self::generate_arrivals)'s draw
    /// order exactly, so a single-node workflow mix denotes the same
    /// trace as the equivalent flat mix under the same seed. Only each
    /// instance's *root* nodes arrive here; children are released by
    /// the engine as their last parent completes. Returns the root
    /// arrivals, one [`WorkflowRun`] per instance, and the total node
    /// count the run must settle.
    fn generate_workflow_arrivals(&self, ctx: &WfCtx) -> (Vec<Arrival>, Vec<WorkflowRun>, u64) {
        let total_weight: f64 = ctx.templates.iter().map(|t| t.weight).sum();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut now = 0.0f64;
        let mut arrivals = Vec::new();
        let mut runs = Vec::with_capacity(self.cfg.requests as usize);
        let mut total = 0u64;
        for inst in 0..self.cfg.requests as usize {
            // Exponential inter-arrival.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            now += -u.ln() / self.cfg.arrival_rate_hz;
            // Weighted template pick, same fallback semantics as
            // `pick_class`.
            let draw = rng.gen_range(0.0..total_weight);
            let mut acc = 0.0;
            let mut t = ctx.templates.len() - 1;
            for (i, tpl) in ctx.templates.iter().enumerate() {
                acc += tpl.weight;
                if draw < acc {
                    t = i;
                    break;
                }
            }
            let tpl = &ctx.templates[t];
            let mut run = WorkflowRun::new(t, tpl, now);
            total += tpl.node_count() as u64;
            for node in run.release_roots() {
                run.node_arrival[node] = Some(arrivals.len());
                arrivals.push(Arrival {
                    at: now,
                    idx: arrivals.len() as u64,
                    class: ctx.base[t] + node,
                    shape: ctx.shapes[t][node],
                    priority: tpl.priority,
                    slo: None,
                    wf: Some(WfTag {
                        inst,
                        node,
                        inherit: None,
                        deadline: run.deadline,
                        blocked_descendants: ctx.blocked[t][node],
                    }),
                });
            }
            runs.push(run);
        }
        (arrivals, runs, total)
    }

    /// Classic M/G/k: whole requests routed at arrival by the dispatch
    /// policy, each replica serving one request at a time.
    fn run_request_level(&mut self, model: &ModelConfig) -> RunStats {
        // Memoize every (replica, shape) service and prefill time up
        // front: ShortestExpectedJob consults all replicas per arrival,
        // and TTFT needs the prefill split.
        let shapes: Vec<RequestShape> = self.cfg.mix.iter().map(|c| c.shape).collect();
        for r in &mut self.replicas {
            for &shape in &shapes {
                r.service_time(model, shape);
                r.prefill_secs(model, shape.input);
            }
        }

        let n = self.replicas.len();
        let mut free = vec![0.0f64; n]; // per-replica next-free time
                                        // Outstanding finish times per replica (FIFO per replica, so the
                                        // front is always the earliest) — LeastLoaded's queue lengths.
        let mut outstanding: Vec<std::collections::VecDeque<f64>> =
            vec![std::collections::VecDeque::new(); n];
        // FCFS dispatch is argmin over next-free times with
        // lowest-index tie-breaks — exactly the lexicographic (time,
        // index) heap minimum, so a heap with one entry per replica
        // replaces the O(n) scan per arrival: only the dispatched
        // replica's key changes, and it is re-pushed right where it
        // changes. LeastLoaded/SEJ keep the scan — their keys change
        // for replicas that were *not* dispatched.
        let mut fcfs_heap: std::collections::BinaryHeap<std::cmp::Reverse<(TimeKey, usize)>> =
            match self.dispatch {
                DispatchPolicy::FcfsSingleQueue => (0..n)
                    .map(|i| std::cmp::Reverse((TimeKey(0.0), i)))
                    .collect(),
                _ => std::collections::BinaryHeap::new(),
            };
        let mut stats = RunStats::new(n, self.cfg.mix.len(), self.cfg.requests);
        stats.peak_batch = 1;

        for arrival in self.generate_arrivals() {
            let now = arrival.at;
            let shape = arrival.shape;
            // Retire requests finished by this arrival instant.
            for q in &mut outstanding {
                while q.front().is_some_and(|&f| f <= now) {
                    q.pop_front();
                }
            }

            let replica = match self.dispatch {
                DispatchPolicy::FcfsSingleQueue => {
                    let std::cmp::Reverse((TimeKey(t), i)) =
                        fcfs_heap.pop().expect("one entry per replica");
                    // Comparing a *stored* f64 against itself: the heap
                    // mirrors `free` exactly (the popped entry is
                    // re-pushed with its new key after dispatch below).
                    debug_assert_eq!(t, free[i]);
                    i
                }
                DispatchPolicy::LeastLoaded => argmin(&outstanding, |q| q.len()),
                DispatchPolicy::ShortestExpectedJob => {
                    let mut best = 0usize;
                    let mut best_done = f64::INFINITY;
                    for (i, (&f, r)) in free.iter().zip(&self.replicas).enumerate() {
                        let done = f.max(now) + r.service[&(model.name, shape)].as_secs_f64();
                        if done < best_done {
                            best_done = done;
                            best = i;
                        }
                    }
                    best
                }
            };

            let s = self.replicas[replica].service[&(model.name, shape)].as_secs_f64();
            let prefill = self.replicas[replica].prefill[&(model.name, shape.input)];
            let start = now.max(free[replica]);
            let finish = start + s;
            free[replica] = finish;
            if self.dispatch == DispatchPolicy::FcfsSingleQueue {
                fcfs_heap.push(std::cmp::Reverse((TimeKey(finish), replica)));
            }
            outstanding[replica].push_back(finish);
            stats.busy[replica] += s;
            let ttft = start - now + prefill;
            stats.ttfts.push(ttft);
            // Request-level scheduling has no prefix cache: every TTFT
            // is a cold one.
            stats.ttft_colds.push(ttft);
            let steps = shape.generation_steps();
            let attained = if steps > 0 {
                let itl = (s - prefill).max(0.0) / steps as f64;
                stats.itls.extend(std::iter::repeat_n(itl, steps as usize));
                request_attains(arrival.slo, ttft, &[itl])
            } else {
                request_attains(arrival.slo, ttft, &[])
            };
            stats.complete(replica, arrival.class, now, s, finish, 0, 0, attained);
        }
        stats
    }

    /// Continuous batching: one global wait queue ordered by the
    /// [`AdmissionPolicy`](super::policy::AdmissionPolicy); every
    /// replica admits at each iteration boundary (KV-gated), then runs
    /// one iteration — at most one prefill chunk (the whole prompt when
    /// chunking is off) plus one decode step over its fully-prefilled
    /// sequences. With `preempt`, admission overcommits against
    /// *current* KV lengths and KV pressure evicts the
    /// [`EvictionPolicy`](super::policy::EvictionPolicy)'s victim to a
    /// replica-local swap queue ordered by the
    /// [`ReadmissionPolicy`](super::policy::ReadmissionPolicy).
    fn run_iteration_level(
        &mut self,
        model: &ModelConfig,
        max_batch: u32,
        prefill_chunk: Option<u64>,
        preempt: bool,
    ) -> RunStats {
        let chunk_size = prefill_chunk.unwrap_or(u64::MAX);
        let overlap = self.overlap_dma;
        let n = self.replicas.len();
        // Effective per-replica host KV pool (`None` = unbounded).
        let pools: Vec<Option<u64>> = self
            .replicas
            .iter()
            .map(|r| {
                self.host_kv_override
                    .unwrap_or_else(|| r.backend.host_kv_bytes())
            })
            .collect();
        // The run's effective class list: the flat mix, or one
        // synthetic class per (template, node) under a workflow mix.
        let mix = self.effective_mix();
        let wf_mode = !self.cfg.workflows.is_empty();
        // Arrivals ascending by time (and index). The wait queue is the
        // arrived, not-yet-admitted slice: `untaken` holds the pending
        // indices in order, so each boundary walks exactly the pending
        // window — no tombstone skipping, and the first element is the
        // next pending arrival (its time is nondecreasing over the run,
        // which the idle-replica index below relies on). Workflow mode
        // appends *child* arrivals mid-run as their parents complete;
        // an append can move the wait-queue head backward in time, so
        // there the idle index is repaired after each fan-out instead
        // of trusting the nondecreasing-head invariant.
        let wf_ctx = self.workflow_ctx();
        let (arrivals, runs, total) = if wf_mode {
            self.generate_workflow_arrivals(&wf_ctx)
        } else {
            (self.generate_arrivals(), Vec::new(), self.cfg.requests)
        };
        let mut arrivals = arrivals;
        let mut wf_runs = runs;
        // The wait queue, ordered by (time, index). On the initial trace
        // the two orders coincide; workflow children appended mid-run
        // keep the set time-sorted so the head and the admission window
        // stay correct.
        let mut untaken: BTreeSet<(TimeKey, usize)> = arrivals
            .iter()
            .enumerate()
            .map(|(i, a)| (TimeKey(a.at), i))
            .collect();
        // Which replica holds each live workflow prefix key's blocks.
        let mut wf_key_homes: HashMap<u64, usize> = HashMap::new();
        let wf_inherit = self.workflow_inheritance;
        // Paged-KV state per replica when a block size is set and the
        // backend reports a block budget; `None` keeps the legacy
        // contiguous accounting (bit-identical) on that replica.
        let widest_input = mix.iter().map(|c| c.shape.input).max().unwrap_or(1);
        let class_keys: Vec<Option<u64>> = mix
            .iter()
            .enumerate()
            .map(|(i, c)| (c.prefix_tokens > 0).then(|| prefix_key(i, c.prefix_tokens)))
            .collect();
        let mut paged: Vec<Option<PagedKv>> = Vec::with_capacity(n);
        for (i, rep) in self.replicas.iter().enumerate() {
            let p = (self.kv_block > 0)
                .then(|| rep.backend.kv_budget_bytes(model, widest_input))
                .flatten()
                .map(|budget| {
                    let block_bytes = crate::capacity::kv_swap_bytes(model, self.kv_block).max(1);
                    let total_blocks = budget / block_bytes;
                    // The paged analogue of the never-admittable
                    // admission guard: every mix shape must fit an
                    // empty replica, or the run could only livelock.
                    let need = mix
                        .iter()
                        .map(|c| c.shape.total_tokens().div_ceil(self.kv_block))
                        .max()
                        .unwrap_or(1);
                    assert!(
                        total_blocks >= need,
                        "kv_block {}: replica {i} ({}) holds {total_blocks} KV blocks but the \
                         largest mix sequence needs {need} — shrink the block size or the shapes",
                        self.kv_block,
                        rep.backend.name(),
                    );
                    PagedKv::new(total_blocks, self.kv_block)
                });
            paged.push(p);
        }
        let mut clock = vec![0.0f64; n]; // per-replica compute clock
                                         // Per-replica running mean iteration time (what one swapped-out
                                         // slot in the re-admission queue costs in wall clock) — the
                                         // re-admission delay term of `SeqView::eviction_cost_secs`.
        let mut iter_sum = vec![0.0f64; n];
        let mut iter_n = vec![0u64; n];
        // Per-replica DMA channel clocks. Disaggregated clusters always
        // run split H2D/D2H lanes (migration traffic must not reorder
        // against swap traffic on one clock); all-`Unified` clusters
        // share one clock per replica unless `two_channel_dma` forces
        // the split — the unsplit arithmetic is bit-identical to the
        // historical single `dma_free` scalar.
        let split_dma = self.two_channel || self.roles.iter().any(|&ro| ro != ReplicaRole::Unified);
        let mut dma: Vec<DmaChannels> = (0..n).map(|_| DmaChannels::new(split_dma)).collect();
        // Decode pool for prefill→decode migrations (empty outside
        // disaggregated runs — prefill replicas then decode locally).
        let decode_pool: Vec<usize> = (0..n)
            .filter(|&i| self.roles[i] == ReplicaRole::DecodeOnly)
            .collect();
        // In-flight migrations per *destination*: (H2D-completion time,
        // sequence). Pushes go through the destination's monotone H2D
        // lane in the deterministic global turn order both cores share,
        // so the deque is sorted by completion time like `incoming`.
        let mut migrating: Vec<VecDeque<(f64, ActiveSeq)>> = vec![VecDeque::new(); n];
        let mut host_used = vec![0u64; n]; // bytes of swapped KV host-side
        let mut batches: Vec<Vec<ActiveSeq>> = vec![Vec::new(); n];
        // Swapped-out sequences per replica (their KV lives host-side —
        // or nowhere, for recompute evictions; re-admission order is
        // the readmission policy's, ahead of new arrivals).
        let mut swapped: Vec<Vec<ActiveSeq>> = vec![Vec::new(); n];
        // In-flight swap-outs under overlapped DMA: the victim's device
        // KV is freed at DMA *completion*, not issue — (completion
        // time, unshared tokens still occupying device memory, victim
        // arrival index — the handle paged mode frees blocks by).
        // Completion times are nondecreasing in push order (each
        // transfer starts no earlier than `dma_free`, which its own
        // completion then advances), so the deque is always sorted and
        // the event-driven core retires/min-selects from the front.
        let mut outgoing: Vec<VecDeque<(f64, u64, u64)>> = vec![VecDeque::new(); n];
        // In-flight swap-ins under overlapped DMA: the sequence joins
        // the batch when its transfer completes — (ready time,
        // sequence). Its device KV is reserved from issue. Sorted for
        // the same reason as `outgoing` (same DMA channel clock).
        let mut incoming: Vec<VecDeque<(f64, ActiveSeq)>> = vec![VecDeque::new(); n];
        let mut stats = RunStats::new(n, mix.len(), total);
        let mut done = 0u64;
        // Monotone swap-out counter (FIFO re-admission's order).
        let mut swap_count = 0u64;

        // The event-driven next-actionable-time index. A replica is
        // *busy* (actionable at its own clock) while it holds work —
        // resident, swapped, or an inbound transfer; an in-flight
        // swap-out alone does not make it busy (matching the scan's
        // predicate: contiguous re-admission can strand an `outgoing`
        // entry on an otherwise empty replica). Idle replicas are
        // actionable at `max(clock, next pending arrival)`, so they
        // split on which side of that max binds: `idle_ready` holds
        // those with clock ≤ the next arrival (all actionable at the
        // arrival — lowest index wins), `idle_late` those past it
        // (actionable at their own clock). The next pending arrival
        // time only moves later, so `idle_late` entries migrate to
        // `idle_ready` monotonically, and once the queue drains an idle
        // replica can never act again (only a replica's own turn makes
        // it busy), so both sets clear.
        let event_core = self.core_mode == CoreMode::EventDriven;
        let mut busy_q: SlotQueue<TimeKey> = SlotQueue::new(n);
        let mut idle_ready: BTreeSet<usize> = BTreeSet::new();
        let mut idle_late: BTreeSet<(TimeKey, usize)> = BTreeSet::new();
        // Workflow mode only: idle non-decode replicas that found the
        // wait queue empty. They are in no idle set (there is no head
        // to classify them against) and are woken by the turn whose
        // completion fan-out refills the queue.
        let mut parked: BTreeSet<usize> = BTreeSet::new();
        if event_core {
            // Decode-only replicas never admit arrivals: they start
            // parked (in no idle set) and are woken by the turn that
            // issues a migration toward them.
            idle_ready.extend((0..n).filter(|&i| self.roles[i] != ReplicaRole::DecodeOnly));
        }
        // Which index the selected replica came from (for removal).
        enum Src {
            Busy,
            Ready,
            Late,
        }

        // Divergence guard (off unless a bound is configured or this
        // run is a rate probe): abort once the arrived-but-unadmitted
        // backlog exceeds the bound. `arrived` advances monotonically
        // with the selected event time (which never decreases);
        // `admitted` counts admissions, which can transiently outpace
        // `arrived` because a replica's clock moves past the event time
        // within its turn — hence the saturating difference.
        let divergence_bound: Option<u64> = match self.divergence {
            Some(depth) => depth,
            None => self
                .probe_divergence
                .then(|| 1024u64.max(32 * u64::from(max_batch) * n as u64)),
        };
        let mut arrived = 0usize;
        let mut admitted = 0u64;
        let mut aborted = false;

        while done < total {
            // Whether a workflow completion appended arrivals this turn
            // (the event core must then repair its idle sets against
            // the possibly-earlier wait-queue head).
            let mut wf_pushed = false;
            // The next actionable replica: the earliest iteration
            // boundary among replicas that hold work (resident, swapped
            // or in-flight) or could admit the earliest pending arrival
            // (idle replicas fast-forward to it). Ties break to the
            // lowest replica index in both cores.
            let head_at = untaken.first().map(|&(t, _)| t.0);
            let (r, at, src) = if event_core {
                let mut next: Option<(f64, usize, Src)> = None;
                if let Some((TimeKey(t), slot)) = busy_q.peek() {
                    next = Some((t, slot, Src::Busy));
                }
                if let Some(h) = head_at {
                    if let Some(&i) = idle_ready.first() {
                        if next
                            .as_ref()
                            .is_none_or(|&(t, s, _)| h < t || (h == t && i < s))
                        {
                            next = Some((h, i, Src::Ready));
                        }
                    }
                    if let Some(&(TimeKey(t), i)) = idle_late.first() {
                        if next
                            .as_ref()
                            .is_none_or(|&(nt, ns, _)| t < nt || (t == nt && i < ns))
                        {
                            next = Some((t, i, Src::Late));
                        }
                    }
                }
                let Some((at, r, src)) = next else {
                    unreachable!("requests outstanding but no replica actionable")
                };
                (r, at, src)
            } else {
                let mut next: Option<(usize, f64)> = None;
                for (r, batch) in batches.iter().enumerate() {
                    let at = if !batch.is_empty()
                        || !swapped[r].is_empty()
                        || !incoming[r].is_empty()
                        || !migrating[r].is_empty()
                    {
                        clock[r]
                    } else if self.roles[r] == ReplicaRole::DecodeOnly {
                        // Empty decode-only replica: nothing to do until
                        // a migration arrives (arrivals never route here).
                        continue;
                    } else if let Some(h) = head_at {
                        clock[r].max(h)
                    } else {
                        continue;
                    };
                    if next.is_none_or(|(_, best)| at < best) {
                        next = Some((r, at));
                    }
                }
                let Some((r, at)) = next else {
                    unreachable!("requests outstanding but no replica actionable")
                };
                (r, at, Src::Busy)
            };
            if event_core {
                match src {
                    Src::Busy => {
                        busy_q.pop();
                    }
                    Src::Ready => {
                        idle_ready.remove(&r);
                    }
                    Src::Late => {
                        idle_late.remove(&(TimeKey(at), r));
                    }
                }
            }
            if let Some(bound) = divergence_bound {
                while arrived < arrivals.len() && arrivals[arrived].at <= at {
                    arrived += 1;
                }
                if (arrived as u64).saturating_sub(admitted) > bound {
                    stats.diverged = true;
                    aborted = true;
                    break;
                }
            }
            clock[r] = at;
            // The turn body, in a labeled block so the event-index
            // reclassification below always runs (the empty-batch
            // branch breaks out early where the scan core `continue`d).
            'body: {
                // Retire DMA that completed by this boundary: finished
                // swap-outs release their device KV, finished swap-ins join
                // the batch (releasing their host-pool bytes). The deques
                // are sorted by completion time, so the completed entries
                // are exactly a front prefix — the event core pops it; the
                // scan core keeps the historical index walk (same entries,
                // same order, since the list is sorted).
                if event_core {
                    while outgoing[r].front().is_some_and(|&(t, _, _)| t <= clock[r]) {
                        let (_, _, oid) = outgoing[r].pop_front().expect("front was checked");
                        if let Some(p) = paged[r].as_mut() {
                            p.drop_unshared(oid);
                        }
                    }
                    while incoming[r].front().is_some_and(|&(t, _)| t <= clock[r]) {
                        let (_, mut seq) = incoming[r].pop_front().expect("front was checked");
                        host_used[r] = host_used[r].saturating_sub(seq.hosted_bytes);
                        seq.hosted_bytes = 0;
                        stats.peak_batch = stats.peak_batch.max(batches[r].len() as u32 + 1);
                        batches[r].push(seq);
                    }
                } else {
                    let mut i = 0;
                    while i < outgoing[r].len() {
                        if outgoing[r][i].0 <= clock[r] {
                            let (_, _, oid) = outgoing[r].remove(i).expect("index in range");
                            if let Some(p) = paged[r].as_mut() {
                                p.drop_unshared(oid);
                            }
                        } else {
                            i += 1;
                        }
                    }
                    let mut i = 0;
                    while i < incoming[r].len() {
                        if incoming[r][i].0 <= clock[r] {
                            let (_, mut seq) = incoming[r].remove(i).expect("index in range");
                            host_used[r] = host_used[r].saturating_sub(seq.hosted_bytes);
                            seq.hosted_bytes = 0;
                            stats.peak_batch = stats.peak_batch.max(batches[r].len() as u32 + 1);
                            batches[r].push(seq);
                        } else {
                            i += 1;
                        }
                    }
                }

                // Swap-ins first: preempted sequences are older than
                // anything still queued, so they are *offered* freed slots
                // before new admissions at every boundary (a policy head
                // that does not yet fit lets newer arrivals pass —
                // policy-ordered among the swapped, not a hard barrier
                // against the queue). A swapped sequence re-enters when one
                // projected iteration of KV growth (its own and the
                // residents') still fits — checking grown lengths, not
                // current ones, keeps a re-admission from bouncing straight
                // back out through the pressure check below, which would
                // charge both transfer costs for zero progress. When the
                // replica is empty it re-enters unconditionally, which
                // guarantees every preempted sequence eventually completes.
                while batches[r].len() + incoming[r].len() < max_batch as usize
                    && !swapped[r].is_empty()
                {
                    // What one re-admission-queue slot costs in wall clock
                    // right now (for the cost views; the depth excludes the
                    // candidate itself — it prices the queue it would
                    // re-join on a further eviction).
                    let readmit_delay = if iter_n[r] > 0 {
                        swapped[r].len().saturating_sub(1) as f64 * iter_sum[r] / iter_n[r] as f64
                    } else {
                        0.0
                    };
                    let views: Vec<(usize, SeqView)> = swapped[r]
                        .iter()
                        .enumerate()
                        .map(|(i, s)| {
                            // Credit the candidate's own hosted bytes back:
                            // its swap-side cost must not read as "pool
                            // full" when the fullness is the candidate
                            // itself (swapping *in* frees the pool).
                            let headroom = pools[r].map(|p| {
                                p.saturating_sub(host_used[r].saturating_sub(s.hosted_bytes))
                            });
                            let kv_blocks = paged[r].as_ref().map_or(0, |p| p.blocks_of(s.idx));
                            let block_tokens = paged[r].as_ref().map_or(0, |p| p.block_tokens());
                            (
                                i,
                                costed_view(
                                    s,
                                    &mut self.replicas[r],
                                    model,
                                    headroom,
                                    block_tokens,
                                    kv_blocks,
                                    readmit_delay,
                                ),
                            )
                        })
                        .collect();
                    let Some(vi) = select_min(
                        &views,
                        |t| t.1,
                        |a, b| self.scheduler.readmission.compare(a, b),
                    ) else {
                        break;
                    };
                    let ci = views[vi].0;
                    let force = batches[r].is_empty() && incoming[r].is_empty();
                    if !force {
                        let grown_tokens = |s: &ActiveSeq| {
                            if s.decoding() && s.remaining > 0 {
                                s.past + 1
                            } else {
                                s.past
                            }
                        };
                        let fits = if let Some(p) = paged[r].as_mut() {
                            // Block arithmetic: residents' one-iteration
                            // growth plus whatever the candidate must
                            // reacquire beyond the (shared) blocks it still
                            // holds — its context for a hosted victim, its
                            // imminent re-prefill target for a recompute
                            // victim (gating on the vacuously small current
                            // cache would invite recompute thrash).
                            let cand = &swapped[r][ci];
                            let target = if cand.decoding() {
                                grown_tokens(cand)
                            } else {
                                cand.prefill_target.max(1)
                            };
                            let mut need =
                                p.blocks_for(target).saturating_sub(p.blocks_of(cand.idx));
                            for s in batches[r].iter() {
                                need += p
                                    .blocks_for(grown_tokens(s))
                                    .saturating_sub(p.blocks_of(s.idx));
                            }
                            p.reclaim(need);
                            if need <= p.free_blocks() {
                                stats.peak_kv_occupancy =
                                    stats.peak_kv_occupancy.max(p.occupancy_plus(need));
                                true
                            } else {
                                false
                            }
                        } else {
                            let grown = |s: &ActiveSeq| ActiveSeq::kv_shape(grown_tokens(s));
                            let mut projected: Vec<RequestShape> =
                                batches[r].iter().map(grown).collect();
                            projected.extend(
                                incoming[r].iter().map(|(_, s)| ActiveSeq::kv_shape(s.past)),
                            );
                            projected.extend(
                                outgoing[r]
                                    .iter()
                                    .map(|&(_, tok, _)| ActiveSeq::kv_shape(tok)),
                            );
                            let cand = &swapped[r][ci];
                            if cand.decoding() {
                                projected.push(grown(cand));
                            } else {
                                // A recompute victim holds no KV *yet*, but
                                // will immediately re-prefill its whole
                                // context: gate on that imminent footprint
                                // (like fresh admission does on the prompt),
                                // not on its vacuously empty cache — otherwise
                                // it re-enters a full device and the pressure
                                // check just evicts someone else (recompute
                                // thrash).
                                projected.push(RequestShape {
                                    input: cand.prefill_target.max(1),
                                    output: 1,
                                });
                            }
                            match self.replicas[r].backend.batch_fits(model, &projected) {
                                Ok(occupancy) => {
                                    stats.peak_kv_occupancy =
                                        stats.peak_kv_occupancy.max(occupancy);
                                    true
                                }
                                Err(_) => false,
                            }
                        };
                        if !fits {
                            break;
                        }
                    }
                    let mut seq = swapped[r].remove(ci);
                    if let Some(p) = paged[r].as_mut() {
                        // A victim whose swap-out DMA is still draining
                        // never really left the device: cancel the pending
                        // retire (which would free blocks now live again)
                        // and regrow the table to its context — a no-op
                        // when the blocks were never dropped. Recompute
                        // victims reacquire blocks lazily, chunk by chunk.
                        outgoing[r].retain(|&(_, _, oid)| oid != seq.idx);
                        p.grow(seq.idx, seq.past);
                    }
                    if seq.hosted_bytes == 0 {
                        // Recompute victim: nothing to restore over the
                        // link — it rejoins the batch and re-prefills its
                        // context through the chunk machinery.
                        stats.peak_batch = stats.peak_batch.max(batches[r].len() as u32 + 1);
                        batches[r].push(seq);
                        continue;
                    }
                    // Restore what the swap-out moved: the unshared
                    // context (everything, under contiguous accounting).
                    let swap_in =
                        self.replicas[r].kv_transfer_secs(model, seq.past - seq.shared_tokens);
                    stats.dma[r] += swap_in;
                    let ready = dma[r].issue(DmaLane::H2D, clock[r], swap_in);
                    if overlap && !force {
                        // Decode continues around the transfer; the
                        // sequence re-enters when its DMA completes.
                        debug_assert!(incoming[r].back().is_none_or(|&(t, _)| t <= ready));
                        incoming[r].push_back((ready, seq));
                    } else {
                        // Serialized (or forced restart of an empty
                        // replica): the compute clock waits out the DMA.
                        stats.stall[r] += ready - clock[r];
                        clock[r] = ready;
                        host_used[r] = host_used[r].saturating_sub(seq.hosted_bytes);
                        seq.hosted_bytes = 0;
                        stats.peak_batch = stats.peak_batch.max(batches[r].len() as u32 + 1);
                        batches[r].push(seq);
                    }
                }

                // Migrant admission: sequences whose inbound migration
                // DMA has landed join the batch next — after this
                // replica's own swapped sequences (they are older work)
                // but ahead of new arrivals, FIFO by DMA-completion
                // time. Migrants arrive fully prefilled, so the gate is
                // the destination's residency check over their current
                // context; like swap-ins, an empty replica admits its
                // head unconditionally (liveness: a migrant too big for
                // a busy replica is guaranteed a slot once the batch
                // drains, so migrated sequences always complete). A
                // no-op in all-`Unified` clusters (the deque is never
                // pushed).
                while batches[r].len() + incoming[r].len() < max_batch as usize
                    && migrating[r].front().is_some_and(|&(t, _)| t <= clock[r])
                {
                    let force = batches[r].is_empty() && incoming[r].is_empty();
                    if !force {
                        let cand = &migrating[r].front().expect("front was checked").1;
                        let fits = if let Some(p) = paged[r].as_mut() {
                            let hit_tokens = class_keys[cand.class].map_or(0, |key| {
                                p.prefix_hit_tokens(key, cand.shape.input.saturating_sub(1))
                            });
                            let need = p
                                .blocks_for(cand.past)
                                .saturating_sub(p.blocks_for(hit_tokens));
                            p.reclaim(need);
                            if need <= p.free_blocks() {
                                stats.peak_kv_occupancy =
                                    stats.peak_kv_occupancy.max(p.occupancy_plus(need));
                                true
                            } else {
                                false
                            }
                        } else {
                            let mut resident: Vec<RequestShape> = batches[r]
                                .iter()
                                .map(|s| ActiveSeq::kv_shape(s.past))
                                .collect();
                            resident.extend(
                                incoming[r].iter().map(|(_, s)| ActiveSeq::kv_shape(s.past)),
                            );
                            resident.extend(
                                outgoing[r]
                                    .iter()
                                    .map(|&(_, tok, _)| ActiveSeq::kv_shape(tok)),
                            );
                            resident.push(ActiveSeq::kv_shape(cand.past));
                            match self.replicas[r].backend.batch_fits(model, &resident) {
                                Ok(occupancy) => {
                                    stats.peak_kv_occupancy =
                                        stats.peak_kv_occupancy.max(occupancy);
                                    true
                                }
                                Err(_) => false,
                            }
                        };
                        if !fits {
                            break;
                        }
                    }
                    let (ready, mut seq) = migrating[r].pop_front().expect("front was checked");
                    // DMA landed at `ready`; the batch had no slot (or
                    // the replica no turn) until now.
                    stats.migration_stall += clock[r] - ready;
                    if let Some(p) = paged[r].as_mut() {
                        // Fresh block accounting on the destination: map
                        // the class prefix from the local cache if this
                        // replica holds it, acquire the rest, and
                        // publish the prefix for later admissions (the
                        // migrant arrives fully prefilled, so its blocks
                        // are publishable immediately).
                        let shared = p.admit(
                            seq.idx,
                            class_keys[seq.class],
                            seq.shape.input.saturating_sub(1),
                        );
                        seq.shared_tokens = shared;
                        p.grow(seq.idx, seq.past);
                        if let Some(key) = class_keys[seq.class] {
                            let prefix = mix[seq.class]
                                .prefix_tokens
                                .min(seq.shape.input.saturating_sub(1));
                            if let Some(s2) = p.register_prefix(seq.idx, key, prefix) {
                                seq.shared_tokens = seq.shared_tokens.max(s2);
                            }
                        }
                    } else {
                        seq.shared_tokens = 0;
                    }
                    stats.peak_batch = stats.peak_batch.max(batches[r].len() as u32 + 1);
                    batches[r].push(seq);
                }

                // Admission at the iteration boundary: the admission
                // policy's order over the already-arrived slice of the
                // queue, bounded by batch slots and KV residency — the
                // residents' *final* lengths normally, their *current*
                // lengths (optimistic overcommit) under preemption.
                // Decode-only replicas never admit arrivals.
                while self.roles[r] != ReplicaRole::DecodeOnly
                    && batches[r].len() + incoming[r].len() < max_batch as usize
                {
                    let mut window: Vec<(usize, QueuedRequest)> = Vec::new();
                    for &(_, i) in untaken.iter() {
                        if arrivals[i].at > clock[r] {
                            break;
                        }
                        window.push((i, arrivals[i].queued_view()));
                    }
                    let Some(wi) = select_min(
                        &window,
                        |t| t.1,
                        |a, b| self.scheduler.admission.compare(a, b),
                    ) else {
                        break;
                    };
                    let pi = window[wi].0;
                    let cand = &arrivals[pi];
                    // A request that can never be served — its sequence
                    // exceeds the model's positional table, or it does not
                    // fit even an empty replica — must panic rather than
                    // block the queue (non-preempt) or be optimistically
                    // admitted into an eviction storm that no swap can
                    // resolve (preempt gates on current lengths, which
                    // would miss the final-length violation).
                    if let Err(e) = self.replicas[r]
                        .backend
                        .batch_fits(model, std::slice::from_ref(&cand.shape))
                    {
                        assert!(
                            !(batches[r].is_empty()
                                && swapped[r].is_empty()
                                && incoming[r].is_empty()),
                            "request {:?} can never be admitted on replica {} ({}): {}",
                            cand.shape,
                            r,
                            self.replicas[r].backend.name(),
                            e
                        );
                        break;
                    }
                    let fits = if let Some(p) = paged[r].as_mut() {
                        // Block arithmetic. The candidate's need is its
                        // footprint minus whatever the prefix cache already
                        // holds (capped below the whole prompt so at least
                        // one token always prefills — TTFT stays
                        // measurable): the imminent prompt under preemptive
                        // overcommit, the final length otherwise — plus, in
                        // the final-length mode, every resident's residual
                        // growth to completion.
                        // Workflow children gate on their inherited
                        // parent prefix; flat classes on their class
                        // prefix (a workflow node's synthetic class
                        // never declares one).
                        let cand_key = cand.wf.and_then(|w| w.inherit).or(class_keys[cand.class]);
                        let hit_tokens = cand_key.map_or(0, |key| {
                            p.prefix_hit_tokens(key, cand.shape.input.saturating_sub(1))
                        });
                        let mut need = if preempt {
                            p.blocks_for(cand.shape.input)
                        } else {
                            p.blocks_for(cand.shape.total_tokens())
                        }
                        .saturating_sub(p.blocks_for(hit_tokens));
                        if !preempt {
                            for s in batches[r].iter() {
                                need += p
                                    .blocks_for(s.shape.total_tokens())
                                    .saturating_sub(p.blocks_of(s.idx));
                            }
                        }
                        p.reclaim(need);
                        if need <= p.free_blocks() {
                            stats.peak_kv_occupancy =
                                stats.peak_kv_occupancy.max(p.occupancy_plus(need));
                            true
                        } else {
                            false
                        }
                    } else {
                        let resident: Vec<RequestShape> = if preempt {
                            let mut v: Vec<RequestShape> = batches[r]
                                .iter()
                                .map(|s| ActiveSeq::kv_shape(s.past))
                                .collect();
                            // In-flight KV holds device memory too: reserved
                            // swap-ins, and swap-outs not yet drained.
                            v.extend(incoming[r].iter().map(|(_, s)| ActiveSeq::kv_shape(s.past)));
                            v.extend(
                                outgoing[r]
                                    .iter()
                                    .map(|&(_, tok, _)| ActiveSeq::kv_shape(tok)),
                            );
                            // The candidate's imminent footprint: its whole
                            // prompt's KV, at prefill activation width.
                            v.push(RequestShape {
                                input: cand.shape.input.max(1),
                                output: 1,
                            });
                            v
                        } else {
                            let mut v: Vec<RequestShape> =
                                batches[r].iter().map(|s| s.shape).collect();
                            v.push(cand.shape);
                            v
                        };
                        match self.replicas[r].backend.batch_fits(model, &resident) {
                            Ok(occupancy) => {
                                stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(occupancy);
                                true
                            }
                            Err(_) => false,
                        }
                    };
                    // Head-of-line blocking (in policy order) is faithful
                    // to the policy; the lone-request check above already
                    // ruled out a never-admittable head.
                    if !fits {
                        break;
                    }
                    untaken.remove(&(TimeKey(arrivals[pi].at), pi));
                    admitted += 1;
                    let arrival = arrivals[pi];
                    let service = self.replicas[r].ideal_service_secs(model, arrival.shape);
                    // Map the shared prefix (if the class opted in and the
                    // cache holds it): the sequence starts with those
                    // tokens already built and prefills only the suffix.
                    let mut shared_tokens = 0u64;
                    if let Some(p) = paged[r].as_mut() {
                        let inherit_key = arrival.wf.and_then(|w| w.inherit);
                        shared_tokens = p.admit(
                            arrival.idx,
                            inherit_key.or(class_keys[arrival.class]),
                            arrival.shape.input.saturating_sub(1),
                        );
                        stats.prompt_tokens += arrival.shape.input;
                        if shared_tokens > 0 {
                            stats.prefix_hits += 1;
                            stats.shared_prompt_tokens += shared_tokens;
                        }
                        if inherit_key.is_some() {
                            // Cross-node inheritance accounting: how much
                            // of this child's prompt its parent's KV
                            // covered (0 on a cross-replica miss).
                            stats.inheritable_tokens += arrival.shape.input;
                            stats.inherited_tokens += shared_tokens;
                        }
                    }
                    // The child has claimed (or forfeited, on a miss) its
                    // slot on the parent's published prefix; drop the
                    // parent's cache entry once its last consumer is in.
                    if let Some(w) = arrival.wf {
                        let run = &mut wf_runs[w.inst];
                        let tpl = &wf_ctx.templates[run.template];
                        if let Some(parent) = run.consume_key(tpl, w.node) {
                            let key = workflow_prefix_key(w.inst as u64, parent);
                            if let Some(home) = wf_key_homes.remove(&key) {
                                if let Some(p) = paged[home].as_mut() {
                                    p.drop_prefix(key);
                                }
                            }
                        }
                    }
                    stats.peak_batch = stats.peak_batch.max(batches[r].len() as u32 + 1);
                    batches[r].push(ActiveSeq {
                        shape: arrival.shape,
                        arrival: arrival.at,
                        idx: arrival.idx,
                        service,
                        class: arrival.class,
                        priority: arrival.priority,
                        slo: arrival.slo,
                        prefilled: shared_tokens,
                        prefill_target: arrival.shape.input,
                        past: shared_tokens,
                        remaining: arrival.shape.generation_steps(),
                        last_token: clock[r],
                        ttft: 0.0,
                        gaps: Vec::new(),
                        preemptions: 0,
                        recomputes: 0,
                        swap_epoch: 0,
                        hosted_bytes: 0,
                        just_prefilled: false,
                        shared_tokens,
                        cache_hit: shared_tokens > 0,
                        wf: arrival.wf,
                    });
                }

                if batches[r].is_empty() {
                    // Nothing resident but DMA in flight — a swap-in whose
                    // completion gates re-entry, or swap-outs still holding
                    // the device KV an arrival may need. Advance to the
                    // next arrival or the earliest completion on either
                    // list, whichever is sooner: the clock always moves, so
                    // admission can never spin against memory that is
                    // already draining, and idle-waiting on DMA counts as
                    // swap stall. (With nothing in flight the top-of-loop
                    // fast-forward handles the idle replica.) Both lists
                    // were pruned at the boundary, so any event here is
                    // strictly in the future.
                    // Both deques are sorted, so their minima sit at the
                    // front; the scan core keeps the historical min_by.
                    let (out_event, in_event, mig_event) = if event_core {
                        (
                            outgoing[r].front().map(|&(t, _, _)| t),
                            incoming[r].front().map(|&(t, _)| t),
                            migrating[r].front().map(|&(t, _)| t),
                        )
                    } else {
                        (
                            outgoing[r]
                                .iter()
                                .map(|&(t, _, _)| t)
                                .min_by(f64::total_cmp),
                            incoming[r].iter().map(|&(t, _)| t).min_by(f64::total_cmp),
                            migrating[r].iter().map(|&(t, _)| t).min_by(f64::total_cmp),
                        )
                    };
                    let swap_event = match (in_event, out_event) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    let event = match (swap_event, mig_event) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    if let Some(event) = event {
                        // A decode-only replica never admits arrivals,
                        // so the pending head is not an event for it.
                        let next_arrival = if self.roles[r] == ReplicaRole::DecodeOnly {
                            f64::INFINITY
                        } else {
                            untaken.first().map_or(f64::INFINITY, |&(t, _)| t.0)
                        };
                        if next_arrival > clock[r] && next_arrival < event {
                            clock[r] = next_arrival;
                        } else {
                            // Idle-waiting on an inbound migration is
                            // migration stall; waiting on swap DMA is
                            // swap stall (a tie goes to the swap side —
                            // both transfers are then due at once).
                            if swap_event.is_none_or(|s| event < s) {
                                stats.migration_stall += event - clock[r];
                            } else {
                                stats.stall[r] += event - clock[r];
                            }
                            clock[r] = event;
                            if event_core {
                                while outgoing[r].front().is_some_and(|&(t, _, _)| t <= clock[r]) {
                                    let (_, _, oid) =
                                        outgoing[r].pop_front().expect("front was checked");
                                    if let Some(p) = paged[r].as_mut() {
                                        p.drop_unshared(oid);
                                    }
                                }
                            } else {
                                let mut j = 0;
                                while j < outgoing[r].len() {
                                    if outgoing[r][j].0 <= clock[r] {
                                        let (_, _, oid) =
                                            outgoing[r].remove(j).expect("index in range");
                                        if let Some(p) = paged[r].as_mut() {
                                            p.drop_unshared(oid);
                                        }
                                    } else {
                                        j += 1;
                                    }
                                }
                            }
                        }
                    }
                    break 'body;
                }

                // The iteration's prefill share: one chunk of the oldest
                // still-prefilling sequence (FCFS by arrival index — a
                // stable id, because evictions below reshuffle positions).
                let chunk_target: Option<u64> = batches[r]
                    .iter()
                    .filter(|s| !s.decoding())
                    .map(|s| s.idx)
                    .min();
                let chunk_tokens = |s: &ActiveSeq| chunk_size.min(s.prefill_target - s.prefilled);

                // KV-pressure check before executing: project every
                // sequence's KV one iteration forward (the chunk for the
                // prefilling sequence, +1 token per decoder) and evict the
                // eviction policy's victim among the *decoding* sequences
                // until the projection fits. Prefilling sequences are never
                // evicted — their partially-built KV would be wasted work —
                // and a lone sequence is never evicted (it could then never
                // make progress), so a single oversized request degrades to
                // the non-preemptive behavior instead of livelocking.
                //
                // The victim's KV leaves by the bundle's EvictionMechanism:
                // swapped to the host pool (falling back to recompute when
                // the pool is full), dropped for re-prefill, or whichever
                // is cheaper for this victim. Under overlapped DMA an
                // eviction frees memory only at transfer completion, so the
                // fit check runs at two horizons: the *eventual* projection
                // (in-flight swap-outs excluded — they drain without
                // further evictions) decides whether more victims are
                // needed, and the *current* projection (in-flight KV
                // included) decides how long the iteration must stall for
                // the DMA to hand the memory back.
                if preempt {
                    // Outcome of one pressure probe: either the projection
                    // fits (possibly after stalling for in-flight
                    // swap-outs), or a victim must go — carrying the
                    // over-capacity ratio to record if nothing is
                    // evictable.
                    enum Pressure {
                        Fits,
                        Evict(Option<f64>),
                    }
                    loop {
                        let grown_tokens = |s: &ActiveSeq| {
                            if chunk_target == Some(s.idx) {
                                s.past + chunk_tokens(s)
                            } else if s.decoding() && s.remaining > 0 {
                                s.past + 1
                            } else {
                                s.past
                            }
                        };
                        let pressure = if let Some(p) = paged[r].as_mut() {
                            // Block arithmetic: one iteration of growth
                            // over the batch, against free blocks plus the
                            // unshared blocks in-flight swap-outs will hand
                            // back (they drain without further evictions).
                            let growth: u64 = batches[r]
                                .iter()
                                .map(|s| {
                                    p.blocks_for(grown_tokens(s))
                                        .saturating_sub(p.blocks_of(s.idx))
                                })
                                .sum();
                            p.reclaim(growth);
                            let in_flight: u64 = outgoing[r]
                                .iter()
                                .map(|&(_, _, oid)| p.unshared_blocks_of(oid))
                                .sum();
                            if growth <= p.free_blocks() + in_flight {
                                // Enough memory once in-flight swap-outs
                                // drain; stall the iteration until the ones
                                // it actually needs have completed.
                                while growth > p.free_blocks() {
                                    let (done_at, oid) = if event_core {
                                        // The deque is completion-sorted, so
                                        // the front is the earliest swap-out.
                                        let (t, _, oid) = outgoing[r].pop_front().expect(
                                            "growth exceeds free blocks only through \
                                         in-flight swap-outs",
                                        );
                                        (t, oid)
                                    } else {
                                        let (j, t) = outgoing[r]
                                            .iter()
                                            .enumerate()
                                            .map(|(j, &(t, _, _))| (j, t))
                                            .min_by(|a, b| a.1.total_cmp(&b.1))
                                            .expect(
                                                "growth exceeds free blocks only through \
                                             in-flight swap-outs",
                                            );
                                        let (_, _, oid) =
                                            outgoing[r].remove(j).expect("index in range");
                                        (t, oid)
                                    };
                                    stats.stall[r] += (done_at - clock[r]).max(0.0);
                                    clock[r] = clock[r].max(done_at);
                                    p.drop_unshared(oid);
                                }
                                stats.peak_kv_occupancy =
                                    stats.peak_kv_occupancy.max(p.occupancy_plus(growth));
                                Pressure::Fits
                            } else {
                                Pressure::Evict(Some(p.occupancy_plus(growth)))
                            }
                        } else {
                            let grown_shape = |s: &ActiveSeq| ActiveSeq::kv_shape(grown_tokens(s));
                            let mut eventual: Vec<RequestShape> =
                                batches[r].iter().map(grown_shape).collect();
                            eventual.extend(
                                incoming[r].iter().map(|(_, s)| ActiveSeq::kv_shape(s.past)),
                            );
                            match self.replicas[r].backend.batch_fits(model, &eventual) {
                                Ok(_) => {
                                    // Enough memory once in-flight swap-outs
                                    // drain; stall the iteration until the ones
                                    // it actually needs have completed.
                                    loop {
                                        let mut current = eventual.clone();
                                        current.extend(
                                            outgoing[r]
                                                .iter()
                                                .map(|&(_, tok, _)| ActiveSeq::kv_shape(tok)),
                                        );
                                        match self.replicas[r].backend.batch_fits(model, &current) {
                                            Ok(occupancy) => {
                                                stats.peak_kv_occupancy =
                                                    stats.peak_kv_occupancy.max(occupancy);
                                                break;
                                            }
                                            Err(_) => {
                                                let done_at = if event_core {
                                                    let (t, _, _) = outgoing[r].pop_front().expect(
                                                        "current projection exceeds the \
                                                         eventual one only through \
                                                         in-flight swap-outs",
                                                    );
                                                    t
                                                } else {
                                                    let (j, t) = outgoing[r]
                                                        .iter()
                                                        .enumerate()
                                                        .map(|(j, &(t, _, _))| (j, t))
                                                        .min_by(|a, b| a.1.total_cmp(&b.1))
                                                        .expect(
                                                            "current projection exceeds the \
                                                         eventual one only through \
                                                         in-flight swap-outs",
                                                        );
                                                    outgoing[r].remove(j);
                                                    t
                                                };
                                                stats.stall[r] += (done_at - clock[r]).max(0.0);
                                                clock[r] = clock[r].max(done_at);
                                            }
                                        }
                                    }
                                    Pressure::Fits
                                }
                                // The final-shape admission check rules out
                                // SequenceTooLong here, so the error always
                                // carries a ratio.
                                Err(e) => Pressure::Evict(
                                    if let crate::capacity::CapacityError::OutOfMemory {
                                        required,
                                        available,
                                    } = e
                                    {
                                        Some(required as f64 / available as f64)
                                    } else {
                                        None
                                    },
                                ),
                            }
                        };
                        let over = match pressure {
                            Pressure::Fits => break,
                            Pressure::Evict(over) => over,
                        };
                        let headroom = pools[r].map(|p| p.saturating_sub(host_used[r]));
                        // The queue the victim would join: each slot ahead
                        // of it costs roughly one mean iteration of wait.
                        let readmit_delay = if iter_n[r] > 0 {
                            swapped[r].len() as f64 * iter_sum[r] / iter_n[r] as f64
                        } else {
                            0.0
                        };
                        let views: Vec<(usize, SeqView)> = batches[r]
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.decoding())
                            .map(|(i, s)| {
                                let kv_blocks = paged[r].as_ref().map_or(0, |p| p.blocks_of(s.idx));
                                let block_tokens =
                                    paged[r].as_ref().map_or(0, |p| p.block_tokens());
                                (
                                    i,
                                    costed_view(
                                        s,
                                        &mut self.replicas[r],
                                        model,
                                        headroom,
                                        block_tokens,
                                        kv_blocks,
                                        readmit_delay,
                                    ),
                                )
                            })
                            .collect();
                        let victim = select_min(
                            &views,
                            |t| t.1,
                            |a, b| self.scheduler.eviction.compare(a, b),
                        );
                        let Some(vi) = victim.filter(|_| batches[r].len() > 1) else {
                            // Nothing evictable: tolerate the overcommit
                            // for this iteration, and record the
                            // over-capacity footprint so the report cannot
                            // claim the run fit in memory.
                            if let Some(ratio) = over {
                                stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(ratio);
                            }
                            break;
                        };
                        let (v, view) = views[vi];
                        let mut seq = batches[r].remove(v);
                        seq.preemptions += 1;
                        swap_count += 1;
                        seq.swap_epoch = swap_count;
                        stats.preemptions += 1;
                        // Only the *unshared* context moves (or drops):
                        // shared prefix blocks stay resident under the
                        // cache's reference. Contiguous mode has no shared
                        // tokens, so this is the whole context there.
                        let moved = seq.past - seq.shared_tokens;
                        // The host pool parks whole blocks in paged mode
                        // — a partially filled tail block occupies a full
                        // block host-side too — so the pool debit rounds
                        // `moved` up to the block size. The DMA transfer
                        // below still prices the actual tokens moved;
                        // contiguous mode stays exact (and bit-identical).
                        let pool_tokens = match paged[r].as_ref() {
                            Some(p) => moved.div_ceil(p.block_tokens()) * p.block_tokens(),
                            None => moved,
                        };
                        let bytes = crate::capacity::kv_swap_bytes(model, pool_tokens);
                        let pool_takes = headroom.is_none_or(|h| bytes <= h);
                        let by_swap = match self.scheduler.mechanism {
                            EvictionMechanism::Swap => pool_takes,
                            EvictionMechanism::Recompute => false,
                            // The one published cost rule
                            // (`SeqView::eviction_cost_secs`):
                            // `swap_secs` is already infinite when
                            // the pool cannot take the bytes, so
                            // the comparison alone decides. (The
                            // re-admission delay term is common to
                            // both mechanisms, so it cancels here.)
                            EvictionMechanism::Cheapest => {
                                2.0 * view.swap_secs <= view.recompute_secs
                            }
                        };
                        if by_swap {
                            seq.hosted_bytes = bytes;
                            host_used[r] += bytes;
                            stats.host_peak_bytes = stats.host_peak_bytes.max(host_used[r]);
                            if let Some(pool) = pools[r] {
                                stats.host_peak_occupancy = stats
                                    .host_peak_occupancy
                                    .max(host_used[r] as f64 / pool.max(1) as f64);
                            }
                            let swap_out = self.replicas[r].kv_transfer_secs(model, moved);
                            stats.dma[r] += swap_out;
                            let done_at = dma[r].issue(DmaLane::D2H, clock[r], swap_out);
                            if overlap {
                                // Device KV drains in the
                                // background; freed at completion.
                                // The D2H lane is monotone, so pushes
                                // keep the deque completion-sorted.
                                debug_assert!(outgoing[r]
                                    .back()
                                    .is_none_or(|&(t, _, _)| t <= done_at));
                                outgoing[r].push_back((done_at, moved, seq.idx));
                            } else {
                                stats.stall[r] += done_at - clock[r];
                                clock[r] = done_at;
                                if let Some(p) = paged[r].as_mut() {
                                    p.drop_unshared(seq.idx);
                                }
                            }
                        } else {
                            // Recompute-based eviction (chosen, or
                            // forced by a full host pool): drop the
                            // KV now, rebuild the whole context by
                            // re-prefill on re-admission — from the
                            // shared prefix up, in paged mode.
                            stats.recomputes += 1;
                            seq.recomputes += 1;
                            seq.prefill_target = seq.past;
                            seq.prefilled = seq.shared_tokens;
                            seq.past = seq.shared_tokens;
                            if let Some(p) = paged[r].as_mut() {
                                p.drop_unshared(seq.idx);
                            }
                        }
                        swapped[r].push(seq);
                    }
                }

                // One mixed iteration: the prefill chunk (if any) plus one
                // decode step over every fully-prefilled sequence. Both
                // shares execute in the same iteration, so the chunk
                // stretches each decoder's token gap by the *chunk* cost.
                let chunk: Option<(usize, u64)> = chunk_target.map(|idx| {
                    let ci = batches[r]
                        .iter()
                        .position(|s| s.idx == idx)
                        .expect("prefilling sequences are never evicted");
                    (ci, chunk_tokens(&batches[r][ci]))
                });
                let (decode_width, mean_past) = {
                    let decoders: Vec<&ActiveSeq> =
                        batches[r].iter().filter(|s| s.decoding()).collect();
                    let width = decoders.len();
                    let mean = if width > 0 {
                        // Round the mean in f64: integer division floored
                        // it, systematically under-pricing decode for
                        // heterogeneous batches.
                        let sum = decoders.iter().map(|s| s.past).sum::<u64>();
                        (sum as f64 / width as f64).round() as u64
                    } else {
                        0
                    };
                    (width as u32, mean)
                };
                let mut dt = 0.0f64;
                if let Some((_, tokens)) = chunk {
                    dt += self.replicas[r].prefill_secs(model, tokens);
                }
                if decode_width > 0 {
                    dt += self.replicas[r].decode_secs(model, mean_past, decode_width);
                }
                clock[r] += dt;
                stats.busy[r] += dt;
                iter_sum[r] += dt;
                iter_n[r] += 1;
                if let Some(p) = paged[r].as_ref() {
                    // Fragmentation sampled once per executed iteration:
                    // private-tail slack over allocated block capacity.
                    stats.frag_sum += p.fragmentation();
                    stats.frag_samples += 1;
                }
                let now = clock[r];

                // Advance the prefilling sequence; its first token comes out
                // of the final chunk — unless this was a recompute
                // re-prefill, which only rebuilds KV the sequence already
                // produced tokens for.
                if let Some((ci, tokens)) = chunk {
                    let seq = &mut batches[r][ci];
                    seq.prefilled += tokens;
                    seq.past = seq.prefilled;
                    if let Some(p) = paged[r].as_mut() {
                        p.grow(seq.idx, seq.past);
                        if seq.decoding() {
                            // The prompt's full prefix blocks are now
                            // built: publish them to the class's cache
                            // entry (first completer wins; later ones
                            // find the entry already present).
                            if let Some(key) = class_keys[seq.class] {
                                let prefix = mix[seq.class]
                                    .prefix_tokens
                                    .min(seq.shape.input.saturating_sub(1));
                                if let Some(shared) = p.register_prefix(seq.idx, key, prefix) {
                                    seq.shared_tokens = seq.shared_tokens.max(shared);
                                }
                            }
                        }
                    }
                    if seq.decoding() {
                        if seq.recomputes == 0 {
                            seq.ttft = now - seq.arrival;
                            stats.ttfts.push(seq.ttft);
                            if seq.cache_hit {
                                stats.ttft_hits.push(seq.ttft);
                            } else {
                                stats.ttft_colds.push(seq.ttft);
                            }
                            seq.last_token = now;
                            if seq.remaining == 0 {
                                // Single-token request: the prefill is the
                                // request.
                                let seq = batches[r].remove(ci);
                                if let Some(tag) = seq.wf {
                                    // Fan out before `complete` frees the
                                    // block table: children inherit this
                                    // node's KV as a shared prefix.
                                    wf_pushed |= WfWorld {
                                        ctx: &wf_ctx,
                                        runs: &mut wf_runs,
                                        arrivals: &mut arrivals,
                                        untaken: &mut untaken,
                                        paged: &mut paged,
                                        key_homes: &mut wf_key_homes,
                                        inheritance: wf_inherit,
                                    }
                                    .on_node_complete(tag, seq.idx, r, now, &mut stats, &mut done);
                                }
                                if let Some(p) = paged[r].as_mut() {
                                    p.complete(seq.idx);
                                }
                                let attained = request_attains(seq.slo, seq.ttft, &seq.gaps);
                                stats.complete(
                                    r,
                                    seq.class,
                                    seq.arrival,
                                    seq.service,
                                    now,
                                    seq.preemptions,
                                    seq.recomputes,
                                    attained,
                                );
                                done += 1;
                            } else if self.roles[r] == ReplicaRole::PrefillOnly
                                && !decode_pool.is_empty()
                            {
                                // Prefill→decode handoff: the sequence
                                // leaves this replica the iteration its
                                // prefill completes. Its KV moves over
                                // both host links — a D2H leg on the
                                // source, then an H2D leg on the
                                // destination — each priced by the
                                // owning side's `kv_transfer_time`.
                                // Like swap pricing, only the unshared
                                // context moves (a class prefix is
                                // assumed replicated to the decode pool
                                // once, amortized across its requests).
                                // The handoff is fire-and-forget: it
                                // never stalls source compute
                                // (`overlap_dma` governs swap traffic
                                // only), and the source's device KV is
                                // freed at issue — prefill admission
                                // capacity, not migration drain, is
                                // what gates this replica.
                                let seq = batches[r].remove(ci);
                                let moved = seq.past - seq.shared_tokens;
                                // No decoders ever reside here (every
                                // one migrates the turn it appears), so
                                // nothing was ever evicted or hosted.
                                debug_assert_eq!(seq.hosted_bytes, 0);
                                if let Some(p) = paged[r].as_mut() {
                                    p.complete(seq.idx);
                                }
                                let targets: Vec<MigrationTarget> = decode_pool
                                    .iter()
                                    .map(|&d| MigrationTarget {
                                        replica: d,
                                        batch_len: batches[d].len() + incoming[d].len(),
                                        inbound: migrating[d].len(),
                                        lane_busy_secs: (dma[d].free_at(DmaLane::H2D) - now)
                                            .max(0.0),
                                        kv_free_blocks: paged[d].as_ref().map(PagedKv::free_blocks),
                                    })
                                    .collect();
                                let ti = select_min(
                                    &targets,
                                    |t| *t,
                                    |a, b| self.migration.compare(a, b),
                                )
                                .expect("decode pool is non-empty");
                                let dst = targets[ti].replica;
                                let out_secs = self.replicas[r].kv_transfer_secs(model, moved);
                                let in_secs = self.replicas[dst].kv_transfer_secs(model, moved);
                                stats.dma[r] += out_secs;
                                stats.dma[dst] += in_secs;
                                let out_done = dma[r].issue(DmaLane::D2H, now, out_secs);
                                let ready = dma[dst].issue(DmaLane::H2D, out_done, in_secs);
                                stats.migrations += 1;
                                stats.migrated_out[r] += 1;
                                stats.migrated_in[dst] += 1;
                                // Pushes ride the destination's monotone
                                // H2D lane in the global turn order both
                                // cores share, keeping the deque sorted.
                                debug_assert!(migrating[dst]
                                    .back()
                                    .is_none_or(|&(t, _)| t <= ready));
                                migrating[dst].push_back((ready, seq));
                                if event_core {
                                    // Wake the destination (a parked
                                    // decode-only replica is in no
                                    // queue; `schedule` upserts, so a
                                    // busy one keeps its key).
                                    busy_q.schedule(dst, TimeKey(clock[dst]));
                                }
                            }
                        } else {
                            // No token emitted: skip this sequence's decode
                            // advance once, keeping `last_token` so the
                            // whole eviction dwell lands in its next ITL
                            // gap (as a swap dwell would).
                            seq.just_prefilled = true;
                        }
                    }
                }

                // Advance the decoders (skipping a sequence whose prefill
                // completed *this* iteration: its first decode token comes
                // next iteration).
                let mut i = 0;
                while i < batches[r].len() {
                    let seq = &mut batches[r][i];
                    if std::mem::take(&mut seq.just_prefilled)
                        || !seq.decoding()
                        || seq.last_token >= now
                    {
                        i += 1;
                        continue;
                    }
                    // Gap since the sequence's previous token — includes
                    // co-scheduled prefill chunks and swap traffic that
                    // stalled the batch, not just this iteration's decode.
                    let gap = now - seq.last_token;
                    stats.itls.push(gap);
                    seq.gaps.push(gap);
                    seq.last_token = now;
                    seq.past += 1;
                    seq.remaining -= 1;
                    let (idx, finished) = (seq.idx, seq.remaining == 0);
                    let wf_tag = seq.wf;
                    if finished {
                        if let Some(tag) = wf_tag {
                            // Fan out before `complete` frees the block
                            // table: children inherit this node's KV as
                            // a shared prefix.
                            wf_pushed |= WfWorld {
                                ctx: &wf_ctx,
                                runs: &mut wf_runs,
                                arrivals: &mut arrivals,
                                untaken: &mut untaken,
                                paged: &mut paged,
                                key_homes: &mut wf_key_homes,
                                inheritance: wf_inherit,
                            }
                            .on_node_complete(tag, idx, r, now, &mut stats, &mut done);
                        }
                    }
                    if let Some(p) = paged[r].as_mut() {
                        if finished {
                            p.complete(idx);
                        } else {
                            p.grow(idx, batches[r][i].past);
                        }
                    }
                    if finished {
                        let seq = batches[r].remove(i);
                        let attained = request_attains(seq.slo, seq.ttft, &seq.gaps);
                        stats.complete(
                            r,
                            seq.class,
                            seq.arrival,
                            seq.service,
                            now,
                            seq.preemptions,
                            seq.recomputes,
                            attained,
                        );
                        done += 1;
                    } else {
                        i += 1;
                    }
                }
            }

            // Re-index the replica for its next turn. A replica holding
            // work (resident, swapped, or an in-flight swap-in) is busy
            // at its own clock; one holding at most background swap-outs
            // is idle — actionable at the pending-arrival head if its
            // clock has not passed it, at its own clock otherwise. With
            // no arrivals left an idle replica can never act again, so
            // the idle sets empty out.
            if event_core {
                if untaken.is_empty() && !wf_mode {
                    // With no arrivals left an idle replica can never
                    // act again. (Workflow mode keeps the sets: a
                    // running node's completion can refill the queue,
                    // and selection already ignores idle replicas
                    // while it is empty.)
                    idle_ready.clear();
                    idle_late.clear();
                }
                let busy = !batches[r].is_empty()
                    || !swapped[r].is_empty()
                    || !incoming[r].is_empty()
                    || !migrating[r].is_empty();
                if busy {
                    busy_q.schedule(r, TimeKey(clock[r]));
                } else if self.roles[r] == ReplicaRole::DecodeOnly {
                    // Parked: arrivals never route here, so the replica
                    // next acts when a migration push wakes it.
                } else if let Some(&(t, _)) = untaken.first() {
                    if clock[r] <= t.0 {
                        idle_ready.insert(r);
                    } else {
                        idle_late.insert((TimeKey(clock[r]), r));
                    }
                } else if wf_mode {
                    // Queue empty but running nodes may still release
                    // children: park until a fan-out turn wakes us.
                    parked.insert(r);
                }
                if wf_pushed {
                    // A completion fan-out appended arrivals at `now`,
                    // which can move the wait-queue head *backward*
                    // (`now` precedes leftover root arrivals). Wake
                    // every parked replica against the new head, and
                    // demote ready replicas whose clock now exceeds it
                    // — they act at their own clock, not the head's.
                    let h = untaken
                        .first()
                        .map(|&(t, _)| t.0)
                        .expect("fan-out left the wait queue non-empty");
                    for pr in std::mem::take(&mut parked) {
                        if clock[pr] <= h {
                            idle_ready.insert(pr);
                        } else {
                            idle_late.insert((TimeKey(clock[pr]), pr));
                        }
                    }
                    let demote: Vec<usize> = idle_ready
                        .iter()
                        .copied()
                        .filter(|&ir| clock[ir] > h)
                        .collect();
                    for ir in demote {
                        idle_ready.remove(&ir);
                        idle_late.insert((TimeKey(clock[ir]), ir));
                    }
                }
                // The arrival head is nondecreasing between fan-outs
                // (admissions only remove from `untaken`), so replicas
                // that fell behind it migrate from late to ready
                // monotonically.
                if let Some(&(t, _)) = untaken.first() {
                    let h = t.0;
                    while let Some(&(t, late_r)) = idle_late.first() {
                        if t.0 <= h {
                            idle_late.pop_first();
                            idle_ready.insert(late_r);
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Every swap-out must have been paired with a swap-in (and
        // every recompute drop with a re-prefill): nothing may end the
        // run swapped, in flight, or holding host-pool bytes. A
        // divergence abort leaves all of that legitimately in flight,
        // so the invariants only hold on completed runs.
        if !aborted {
            debug_assert!(swapped.iter().all(Vec::is_empty));
            debug_assert!(incoming.iter().all(VecDeque::is_empty));
            debug_assert!(migrating.iter().all(VecDeque::is_empty));
            debug_assert!(host_used.iter().all(|&b| b == 0));
            // Block conservation: with every sequence completed and the
            // caches flushed, every block must be back on the free
            // list.
            for p in paged.iter_mut().flatten() {
                p.finish();
            }
        }
        stats
    }

    /// Builds the report from either engine's raw samples.
    fn assemble(&self, mut stats: RunStats) -> ServingReport {
        let finite_sort = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        };
        finite_sort(&mut stats.sojourns);
        finite_sort(&mut stats.ttfts);
        finite_sort(&mut stats.ttft_hits);
        finite_sort(&mut stats.ttft_colds);
        finite_sort(&mut stats.itls);
        for cs in &mut stats.class_sojourns {
            finite_sort(cs);
        }
        finite_sort(&mut stats.workflow_latencies);
        let n = self.replicas.len();
        let per_class = self
            .effective_mix()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let cs = &stats.class_sojourns[i];
                let completed = cs.len() as u64;
                ClassReport {
                    shape: c.shape,
                    completed,
                    sojourn: LatencyPercentiles::from_sorted(cs),
                    preemptions: stats.class_preemptions[i],
                    recomputes: stats.class_recomputes[i],
                    slo_attainment: if completed == 0 {
                        1.0
                    } else {
                        stats.class_attained[i] as f64 / completed as f64
                    },
                }
            })
            .collect();
        let per_replica = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| ReplicaReport {
                name: r.backend.name().to_string(),
                role: self.roles[i],
                completed: stats.served[i],
                utilization: if stats.last_finish > 0.0 {
                    (stats.busy[i] / stats.last_finish).min(1.0)
                } else {
                    0.0
                },
                kv_dma: Duration::from_secs_f64(stats.dma[i]),
                migrations_in: stats.migrated_in[i],
                migrations_out: stats.migrated_out[i],
            })
            .collect();
        // On a completed run every configured request finishes, so the
        // observed count equals `cfg.requests`; a divergence abort
        // reports the prefix that actually completed. `max(1)` and the
        // span guards only matter on an abort before any completion.
        let completions = stats.completions;
        ServingReport {
            completed: completions,
            mean_service: Duration::from_secs_f64(stats.service_sum / completions.max(1) as f64),
            sojourn: LatencyPercentiles::from_sorted(&stats.sojourns),
            ttft: LatencyPercentiles::from_sorted(&stats.ttfts),
            inter_token: LatencyPercentiles::from_sorted(&stats.itls),
            peak_batch: stats.peak_batch,
            peak_kv_occupancy: stats.peak_kv_occupancy,
            preemptions: stats.preemptions,
            recomputes: stats.recomputes,
            preempted_requests: stats.preempted_requests,
            max_preemptions: stats.max_preemptions,
            host_kv_peak_bytes: stats.host_peak_bytes,
            host_kv_peak_occupancy: stats.host_peak_occupancy,
            kv_dma: Duration::from_secs_f64(stats.dma.iter().sum()),
            swap_stall: Duration::from_secs_f64(stats.stall.iter().sum()),
            migrations: stats.migrations,
            migration_stall: Duration::from_secs_f64(stats.migration_stall),
            fragmentation: if stats.frag_samples > 0 {
                stats.frag_sum / stats.frag_samples as f64
            } else {
                0.0
            },
            prefix_share_ratio: if stats.prompt_tokens > 0 {
                stats.shared_prompt_tokens as f64 / stats.prompt_tokens as f64
            } else {
                0.0
            },
            prefix_cache_hits: stats.prefix_hits,
            ttft_cache_hit: LatencyPercentiles::from_sorted(&stats.ttft_hits),
            ttft_cold: LatencyPercentiles::from_sorted(&stats.ttft_colds),
            slo_attainment: stats.attained as f64 / completions.max(1) as f64,
            workflow_latency: LatencyPercentiles::from_sorted(&stats.workflow_latencies),
            workflow_slo_attainment: if stats.workflow_latencies.is_empty() {
                1.0
            } else {
                stats.workflow_attained as f64 / stats.workflow_latencies.len() as f64
            },
            completed_workflows: stats.workflow_latencies.len() as u64,
            cancelled_nodes: stats.cancelled_nodes,
            inherited_prefix_ratio: if stats.inheritable_tokens > 0 {
                stats.inherited_tokens as f64 / stats.inheritable_tokens as f64
            } else {
                0.0
            },
            utilization: if stats.last_finish > 0.0 {
                (stats.busy.iter().sum::<f64>() / (n as f64 * stats.last_finish)).min(1.0)
            } else {
                0.0
            },
            throughput_rps: if stats.last_finish > 0.0 {
                completions as f64 / stats.last_finish
            } else {
                0.0
            },
            goodput_rps: if stats.last_finish > 0.0 {
                stats.attained as f64 / stats.last_finish
            } else {
                0.0
            },
            diverged: stats.diverged,
            per_class,
            per_replica,
        }
    }

    /// Runs the simulation once per rate in `rates` and returns the
    /// reports **in the same order** — probing the rates in parallel
    /// (one [`try_clone`](Self::try_clone) per extra rate, on
    /// `std::thread::scope` threads) when every backend supports
    /// cloning, serially on this engine otherwise. Either path yields
    /// identical reports: a run is a pure function of the config and
    /// the backends' deterministic costs. The configured arrival rate
    /// is restored afterwards.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`run`](Self::run), or if a probe
    /// thread panics.
    pub fn sweep_rates(&mut self, model: &ModelConfig, rates: &[f64]) -> Vec<ServingReport> {
        let original = self.cfg.arrival_rate_hz;
        let reports = self.probe_rates(model, rates);
        self.cfg.arrival_rate_hz = original;
        reports
    }

    /// [`sweep_rates`](Self::sweep_rates) without the rate restore —
    /// the shared probe core under the public sweep and the bisection.
    fn probe_rates(&mut self, model: &ModelConfig, rates: &[f64]) -> Vec<ServingReport> {
        let Some((&first_rate, rest)) = rates.split_first() else {
            return Vec::new();
        };
        let mut clones: Vec<ServingSim> = Vec::with_capacity(rest.len());
        for _ in rest {
            match self.try_clone() {
                Some(c) => clones.push(c),
                None => {
                    // A replica backend cannot clone: probe serially on
                    // this engine. Same reports, just one at a time.
                    let mut out = Vec::with_capacity(rates.len());
                    for &rate in rates {
                        self.cfg.arrival_rate_hz = rate;
                        out.push(self.run(model));
                    }
                    return out;
                }
            }
        }
        let mut out = Vec::with_capacity(rates.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = clones
                .iter_mut()
                .zip(rest)
                .map(|(clone, &rate)| {
                    s.spawn(move || {
                        clone.cfg.arrival_rate_hz = rate;
                        clone.run(model)
                    })
                })
                .collect();
            // The first rate runs on this engine, concurrently with the
            // spawned probes — and leaves its memos warm for later
            // rounds.
            self.cfg.arrival_rate_hz = first_rate;
            out.push(self.run(model));
            for h in handles {
                out.push(h.join().expect("rate-probe thread panicked"));
            }
        });
        out
    }

    /// Binary-searches the highest arrival rate in `[lo_hz, hi_hz]` whose
    /// report satisfies `ok`, to a 1% relative resolution. Returns `0.0`
    /// when even `lo_hz` fails. Service memos make each probe a
    /// queueing-only pass (no device simulation), and the configured
    /// arrival rate is restored afterwards.
    ///
    /// Probes run **speculatively in parallel** when the backends
    /// support [`try_clone`](Self::try_clone): each round simulates the
    /// current midpoint and both possible next midpoints concurrently,
    /// then consults `ok` serially — `ok` sees exactly the reports, in
    /// exactly the order, the serial bisection would show it, so the
    /// returned rate is identical (runs are deterministic, and the
    /// bracket arithmetic is reproduced bit-for-bit). Probes also run
    /// under the automatic divergence guard
    /// ([`divergence_depth`](Self::divergence_depth)): a probe whose
    /// backlog diverges is cut short and counted as failing — which it
    /// would, since [`stable`](ServingReport::stable) rejects diverged
    /// reports — instead of simulating the whole horizon of an
    /// overloaded queue.
    ///
    /// This is the generic form behind
    /// [`sustainable_rate`](Self::sustainable_rate) (stability) and
    /// [`sustainable_goodput_rate`](Self::sustainable_goodput_rate)
    /// (stability + SLO attainment); `ok` must be monotone in spirit —
    /// a criterion that flickers with rate makes bisection meaningless.
    ///
    /// # Panics
    ///
    /// Panics if `lo_hz` or the bracket is non-positive, or on the
    /// conditions of [`run`](Self::run).
    pub fn sustainable_rate_where(
        &mut self,
        model: &ModelConfig,
        lo_hz: f64,
        hi_hz: f64,
        mut ok: impl FnMut(&ServingReport) -> bool,
    ) -> f64 {
        assert!(lo_hz > 0.0 && hi_hz > lo_hz, "need 0 < lo_hz < hi_hz");
        let original = self.cfg.arrival_rate_hz;
        let was_probing = self.probe_divergence;
        self.probe_divergence = true;
        // A diverged probe fails regardless of `ok`: its report covers
        // only a prefix of the horizon, and a backlog past the auto
        // bound is the definition of "hopelessly unstable".
        let mut pass = |report: &ServingReport| !report.diverged && ok(report);
        let mut best = 0.0f64;
        let (mut lo, mut hi) = (lo_hz, hi_hz);
        let ends = self.probe_rates(model, &[lo, hi]);
        if pass(&ends[0]) {
            best = lo;
            if pass(&ends[1]) {
                best = hi;
                lo = hi;
            }
            while hi / lo > 1.01 {
                // The serial step would probe mid = √(lo·hi), then —
                // depending on the verdict — √(mid·hi) or √(lo·mid)
                // next. Simulate all three now, consult `ok` in the
                // serial order on the two the serial search would see.
                let mid = (lo * hi).sqrt();
                let on_fail = (lo * mid).sqrt();
                let on_pass = (mid * hi).sqrt();
                let probes = self.probe_rates(model, &[mid, on_fail, on_pass]);
                let (child, child_report) = if pass(&probes[0]) {
                    best = mid;
                    lo = mid;
                    (on_pass, &probes[2])
                } else {
                    hi = mid;
                    (on_fail, &probes[1])
                };
                if hi / lo > 1.01 {
                    if pass(child_report) {
                        best = child;
                        lo = child;
                    } else {
                        hi = child;
                    }
                }
            }
        }
        self.probe_divergence = was_probing;
        self.cfg.arrival_rate_hz = original;
        best
    }

    /// Binary-searches the highest arrival rate in `[lo_hz, hi_hz]` whose
    /// report is [`stable`](ServingReport::stable), to a 1% relative
    /// resolution. Returns `0.0` when even `lo_hz` is unstable.
    ///
    /// # Panics
    ///
    /// See [`sustainable_rate_where`](Self::sustainable_rate_where).
    ///
    /// # Examples
    ///
    /// ```
    /// use ianus_core::serving::{ServingConfig, ServingSim};
    /// use ianus_core::{IanusSystem, SystemConfig};
    /// use ianus_model::ModelConfig;
    ///
    /// let mut sim = ServingSim::new(ServingConfig::interactive(1.0, 150))
    ///     .replica(IanusSystem::new(SystemConfig::ianus()));
    /// let rate = sim.sustainable_rate(&ModelConfig::gpt2_m(), 0.5, 64.0);
    /// assert!(rate > 0.5, "one IANUS device sustains interactive load");
    /// // The probe leaves the configured rate untouched.
    /// assert_eq!(sim.config().arrival_rate_hz, 1.0);
    /// ```
    pub fn sustainable_rate(&mut self, model: &ModelConfig, lo_hz: f64, hi_hz: f64) -> f64 {
        self.sustainable_rate_where(model, lo_hz, hi_hz, |r| r.stable())
    }

    /// Binary-searches the highest arrival rate whose report is both
    /// [`stable`](ServingReport::stable) and meets `min_attainment` of
    /// its SLOs ([`slo_attainment`](ServingReport::slo_attainment) ≥
    /// `min_attainment`) — the **goodput** capacity an SLO-aware
    /// operator provisions for, rather than the bare stability knee.
    /// With no SLOs in the mix this degrades to
    /// [`sustainable_rate`](Self::sustainable_rate) (attainment is
    /// identically 1).
    ///
    /// # Panics
    ///
    /// See [`sustainable_rate_where`](Self::sustainable_rate_where).
    pub fn sustainable_goodput_rate(
        &mut self,
        model: &ModelConfig,
        lo_hz: f64,
        hi_hz: f64,
        min_attainment: f64,
    ) -> f64 {
        self.sustainable_rate_where(model, lo_hz, hi_hz, |r| {
            r.stable() && r.slo_attainment >= min_attainment
        })
    }
}

/// Index of the comparator-minimal element (ties keep the earliest),
/// viewing each element through `view`. `None` on an empty slice.
fn select_min<T, V>(
    items: &[T],
    view: impl Fn(&T) -> V,
    compare: impl Fn(&V, &V) -> std::cmp::Ordering,
) -> Option<usize> {
    let mut best: Option<(usize, V)> = None;
    for (i, item) in items.iter().enumerate() {
        let v = view(item);
        best = match best {
            None => Some((i, v)),
            Some((bi, bv)) => {
                if compare(&v, &bv).is_lt() {
                    Some((i, v))
                } else {
                    Some((bi, bv))
                }
            }
        };
    }
    best.map(|(i, _)| i)
}

/// The policy view of `seq` with its eviction-cost estimates: one-way
/// swap time (infinite when the replica's host-pool `headroom` cannot
/// take the sequence's KV bytes) and the grid-estimated re-prefill
/// cost. Both price only the *unshared* context — shared prefix blocks
/// neither move nor recompute (everything is unshared under contiguous
/// accounting). The headroom check charges whole blocks when
/// `block_tokens` is nonzero (paged mode), matching the engine's
/// block-granular pool debit; 0 keeps the exact contiguous charge.
/// `kv_blocks` and `readmit_delay` pass through to the view for
/// block-aware policies.
fn costed_view(
    seq: &ActiveSeq,
    replica: &mut Replica,
    model: &ModelConfig,
    headroom: Option<u64>,
    block_tokens: u64,
    kv_blocks: u64,
    readmit_delay: f64,
) -> SeqView {
    let moved = seq.past - seq.shared_tokens;
    let pool_tokens = if block_tokens > 0 {
        moved.div_ceil(block_tokens) * block_tokens
    } else {
        moved
    };
    let bytes = crate::capacity::kv_swap_bytes(model, pool_tokens);
    let swap_secs = match headroom {
        Some(h) if bytes > h => f64::INFINITY,
        _ => replica.kv_transfer_secs(model, moved),
    };
    let recompute_secs = replica.prefill_est_secs(model, moved);
    seq.view(swap_secs, recompute_secs, kv_blocks, readmit_delay)
}

fn argmin<T, K: PartialOrd>(items: &[T], key: impl Fn(&T) -> K) -> usize {
    let mut best = 0usize;
    for i in 1..items.len() {
        if key(&items[i]) < key(&items[best]) {
            best = i;
        }
    }
    best
}
