//! System-level configuration (Tables 1 and 2).

use crate::pas::PasPolicy;
use ianus_dram::{GddrOrganization, GddrTimings, TransferModel};
use ianus_npu::NpuConfig;
use ianus_pim::PimConfig;
use ianus_sim::Duration;

/// Main-memory organization (Section 3.2 / Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryPolicy {
    /// IANUS: the PIM array is also the NPU's main memory. All 8 channels
    /// serve both normal accesses and PIM computation, which therefore
    /// conflict and are arbitrated by PAS.
    Unified,
    /// Half the channels are plain NPU DRAM, half are PIM accelerator
    /// memory; shared FC parameters are duplicated where capacity allows.
    Partitioned,
    /// NPU-MEM baseline: plain GDDR6 only, PIM compute disabled.
    NpuMemOnly,
}

/// Full configuration of one IANUS device (plus device count for the
/// Section 7 scalability studies).
///
/// # Examples
///
/// ```
/// use ianus_core::{MemoryPolicy, SystemConfig};
/// let cfg = SystemConfig::ianus();
/// assert_eq!(cfg.memory, MemoryPolicy::Unified);
/// assert_eq!(cfg.pim_groups(), 4);            // 8 channels / 4 cores
/// assert_eq!(cfg.pim_channels_per_group(), 2); // one AiM chip per core
/// let nm = SystemConfig::npu_mem();
/// assert_eq!(nm.memory, MemoryPolicy::NpuMemOnly);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// NPU configuration (cores, units, scratchpads).
    pub npu: NpuConfig,
    /// DRAM organization of the device's 8 GB memory.
    pub org: GddrOrganization,
    /// DRAM timings.
    pub timings: GddrTimings,
    /// Memory organization policy.
    pub memory: MemoryPolicy,
    /// PAS policy (mapping + scheduling).
    pub pas: PasPolicy,
    /// Number of AiM chips with active PIM compute (Figure 15 varies
    /// this while keeping memory bandwidth constant). Each chip
    /// contributes 2 channels of PIM compute.
    pub pim_chips: u32,
    /// Number of ganged IANUS devices (Section 7; 1 for a single device).
    pub devices: u32,
    /// PCIe 5.0 ×16 host/device interconnect bandwidth in GB/s.
    pub pcie_gbps: f64,
    /// PCIe transfer latency (per synchronization message).
    pub pcie_latency: Duration,
    /// Host DRAM reserved for swapped-out KV caches, in bytes — the
    /// finite pool `Backend::host_kv_bytes` reports for this device (a
    /// device group shares one host, so the pool does not scale with
    /// the device count). Swap-outs that would overflow it fall back to
    /// recompute-based eviction in the serving engine.
    pub host_kv_bytes: u64,
    /// Fixed cost of one macro PIM command beyond its micro-command
    /// schedule: command-scheduler hand-off to the PCU, macro→micro
    /// decode, input-vector marshalling from the core, and the completion
    /// signal that re-enables DMA (Section 4.3). Calibrated so simulated
    /// per-token generation latencies track the paper's (e.g. ≈3.8 ms per
    /// GPT-2 XL token).
    pub pim_macro_overhead: Duration,
}

impl SystemConfig {
    /// The paper's IANUS configuration (Table 1).
    pub fn ianus() -> Self {
        SystemConfig {
            npu: NpuConfig::ianus_default(),
            org: GddrOrganization::ianus_default(),
            timings: GddrTimings::ianus_default(),
            memory: MemoryPolicy::Unified,
            pas: PasPolicy::ianus(),
            pim_chips: 4,
            devices: 1,
            pcie_gbps: 64.0,
            pcie_latency: Duration::from_ns(1500),
            host_kv_bytes: 32 << 30,
            pim_macro_overhead: Duration::from_ns(1800),
        }
    }

    /// The NPU-MEM baseline: identical NPU, plain GDDR6, no PIM compute.
    pub fn npu_mem() -> Self {
        SystemConfig {
            memory: MemoryPolicy::NpuMemOnly,
            ..Self::ianus()
        }
    }

    /// The partitioned-memory comparison system of Figure 13.
    pub fn partitioned() -> Self {
        SystemConfig {
            memory: MemoryPolicy::Partitioned,
            ..Self::ianus()
        }
    }

    /// Overrides the PAS policy.
    pub fn with_pas(mut self, pas: PasPolicy) -> Self {
        self.pas = pas;
        self
    }

    /// Overrides the core count (Figure 15).
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.npu = self.npu.with_cores(cores);
        self
    }

    /// Overrides the PIM chip count (Figure 15).
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero or exceeds the organization's chips.
    pub fn with_pim_chips(mut self, chips: u32) -> Self {
        assert!(
            chips > 0 && chips <= self.org.chips(),
            "pim chip count {chips} out of range"
        );
        self.pim_chips = chips;
        self
    }

    /// Overrides the host-side KV swap pool (bytes).
    pub fn with_host_kv_bytes(mut self, bytes: u64) -> Self {
        self.host_kv_bytes = bytes;
        self
    }

    /// Overrides the device count (Figures 17/18).
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn with_devices(mut self, devices: u32) -> Self {
        assert!(devices > 0, "device count must be positive");
        self.devices = devices;
        self
    }

    /// Channels with PIM compute capability.
    pub fn pim_channels(&self) -> u32 {
        match self.memory {
            MemoryPolicy::Unified => self.pim_chips * self.org.channels_per_chip,
            // Half the channels belong to the PIM side of the partition.
            MemoryPolicy::Partitioned => {
                (self.pim_chips * self.org.channels_per_chip).min(self.org.channels / 2)
            }
            MemoryPolicy::NpuMemOnly => 0,
        }
    }

    /// Channels available for normal NPU memory traffic.
    pub fn npu_channels(&self) -> u32 {
        match self.memory {
            MemoryPolicy::Unified | MemoryPolicy::NpuMemOnly => self.org.channels,
            MemoryPolicy::Partitioned => self.org.channels / 2,
        }
    }

    /// Independent PIM channel groups (one per core where possible; cores
    /// share groups when PIM chips are scarce).
    pub fn pim_groups(&self) -> u32 {
        self.pim_channels().min(self.npu.cores).max(1)
    }

    /// Channels per PIM group.
    pub fn pim_channels_per_group(&self) -> u32 {
        if self.pim_channels() == 0 {
            0
        } else {
            (self.pim_channels() / self.pim_groups()).max(1)
        }
    }

    /// PIM configuration of one channel group.
    ///
    /// # Panics
    ///
    /// Panics if the memory policy has no PIM compute.
    pub fn pim_group_config(&self) -> PimConfig {
        assert!(
            self.pim_channels() > 0,
            "memory policy {:?} has no PIM compute",
            self.memory
        );
        PimConfig {
            org: self.org,
            timings: self.timings,
            channels: self.pim_channels_per_group(),
            ..PimConfig::ianus_default()
        }
    }

    /// Transfer model for normal memory traffic.
    pub fn transfer_model(&self) -> TransferModel {
        TransferModel::new(self.org, self.timings)
    }

    /// Sustained bandwidth (GB/s) of a stream striped over all NPU
    /// channels (shared by all cores).
    pub fn striped_bandwidth_gbps(&self) -> f64 {
        self.transfer_model()
            .effective_bandwidth_gbps(self.npu_channels())
    }

    /// Sustained bandwidth (GB/s) of one core's local channel group
    /// (KV cache and PIM input/output traffic under head-wise placement).
    pub fn group_bandwidth_gbps(&self) -> f64 {
        let ch = match self.memory {
            MemoryPolicy::Unified | MemoryPolicy::Partitioned => {
                self.pim_channels_per_group().max(1)
            }
            // Without PIM the per-core share of the striped bus.
            MemoryPolicy::NpuMemOnly => (self.org.channels / self.npu.cores).max(1),
        };
        self.transfer_model().effective_bandwidth_gbps(ch)
    }

    /// Relative acquisition cost of this configuration in the abstract
    /// units of [`device_cost_units`](crate::capacity::device_cost_units):
    /// one device's memory capacity + sustained-bandwidth premium,
    /// scaled by the ganged device count. Used to size equal-cost pools
    /// when comparing cluster organizations.
    pub fn cost_units(&self) -> f64 {
        crate::capacity::device_cost_units(self.org.capacity, self.striped_bandwidth_gbps())
            * f64::from(self.devices)
    }

    /// Device memory capacity in bytes available to model weights.
    pub fn weight_capacity_bytes(&self) -> u64 {
        match self.memory {
            MemoryPolicy::Unified | MemoryPolicy::NpuMemOnly => self.org.capacity,
            // Shared parameters must be duplicated across both halves.
            MemoryPolicy::Partitioned => self.org.capacity / 2,
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::ianus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_has_double_pim_of_partitioned() {
        let u = SystemConfig::ianus();
        let p = SystemConfig::partitioned();
        assert_eq!(u.pim_channels(), 8);
        assert_eq!(p.pim_channels(), 4);
        assert_eq!(u.npu_channels(), 8);
        assert_eq!(p.npu_channels(), 4);
    }

    #[test]
    fn npu_mem_disables_pim() {
        let n = SystemConfig::npu_mem();
        assert_eq!(n.pim_channels(), 0);
        assert_eq!(n.pim_groups(), 1);
        assert_eq!(n.striped_bandwidth_gbps(), 256.0);
    }

    #[test]
    fn group_structure_default() {
        let cfg = SystemConfig::ianus();
        assert_eq!(cfg.pim_groups(), 4);
        assert_eq!(cfg.pim_channels_per_group(), 2);
        assert_eq!(cfg.pim_group_config().channels, 2);
        assert_eq!(cfg.group_bandwidth_gbps(), 64.0);
    }

    #[test]
    fn scarce_pim_chips_share_groups() {
        let cfg = SystemConfig::ianus().with_pim_chips(1);
        assert_eq!(cfg.pim_channels(), 2);
        assert_eq!(cfg.pim_groups(), 2);
        assert_eq!(cfg.pim_channels_per_group(), 1);
    }

    #[test]
    fn partitioned_halves_weight_capacity() {
        assert_eq!(SystemConfig::ianus().weight_capacity_bytes(), 8 << 30);
        assert_eq!(SystemConfig::partitioned().weight_capacity_bytes(), 4 << 30);
    }

    #[test]
    #[should_panic(expected = "no PIM compute")]
    fn pim_config_requires_pim() {
        let _ = SystemConfig::npu_mem().pim_group_config();
    }
}
