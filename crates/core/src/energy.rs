//! Dynamic energy model (Section 6.1's methodology, Figure 11).
//!
//! The paper's simulator reports dynamic energy of NPU cores, PIM
//! operations and standard DRAM operations, assuming PIM computing power
//! is 3× DRAM-read power. We reproduce that accounting: the compiler
//! accumulates [`Activity`] counters (bytes moved, rows activated, FLOPs
//! executed) and [`EnergyModel`] converts them to picojoules.

/// Activity counters accumulated during compilation/execution of a stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    /// Bytes read from DRAM over the external interface (weights, KV
    /// cache, PIM inputs fetched by DMA).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM over the external interface.
    pub dram_write_bytes: u64,
    /// Bytes streamed through in-bank PUs by PIM MAC commands.
    pub pim_internal_bytes: u64,
    /// DRAM row activations issued by PIM operations.
    pub pim_activations: u64,
    /// Bytes written into PIM global buffers.
    pub pim_gb_bytes: u64,
    /// Bytes drained from PIM accumulators.
    pub pim_drain_bytes: u64,
    /// Matrix-unit FLOPs.
    pub mu_flops: u64,
    /// Vector-unit lane-operations.
    pub vu_ops: u64,
    /// Bytes moved on-chip (transposes, scratchpad streams).
    pub onchip_bytes: u64,
}

impl Activity {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Activity::default()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &Activity) {
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.pim_internal_bytes += other.pim_internal_bytes;
        self.pim_activations += other.pim_activations;
        self.pim_gb_bytes += other.pim_gb_bytes;
        self.pim_drain_bytes += other.pim_drain_bytes;
        self.mu_flops += other.mu_flops;
        self.vu_ops += other.vu_ops;
        self.onchip_bytes += other.onchip_bytes;
    }

    /// All counters scaled by an integer factor (identical repeated
    /// stages).
    pub fn scaled(&self, factor: f64) -> Activity {
        let s = |v: u64| (v as f64 * factor).round() as u64;
        Activity {
            dram_read_bytes: s(self.dram_read_bytes),
            dram_write_bytes: s(self.dram_write_bytes),
            pim_internal_bytes: s(self.pim_internal_bytes),
            pim_activations: s(self.pim_activations),
            pim_gb_bytes: s(self.pim_gb_bytes),
            pim_drain_bytes: s(self.pim_drain_bytes),
            mu_flops: s(self.mu_flops),
            vu_ops: s(self.vu_ops),
            onchip_bytes: s(self.onchip_bytes),
        }
    }
}

/// Energy by source — the three bars of Figure 11.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// "GDDR6: Normal op" — external DRAM reads/writes.
    pub dram_normal_pj: f64,
    /// "GDDR6: PIM op" — in-memory computation.
    pub pim_pj: f64,
    /// "NPU's cores" — matrix/vector/scratchpad activity.
    pub core_pj: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dram_normal_pj + self.pim_pj + self.core_pj
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.dram_normal_pj += other.dram_normal_pj;
        self.pim_pj += other.pim_pj;
        self.core_pj += other.core_pj;
    }

    /// Scaled copy.
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            dram_normal_pj: self.dram_normal_pj * factor,
            pim_pj: self.pim_pj * factor,
            core_pj: self.core_pj * factor,
        }
    }
}

/// Converts activity counters into dynamic energy.
///
/// Coefficients are GDDR6/accelerator-class estimates; only ratios matter
/// for the paper's normalized Figure 11. The defining assumption — PIM
/// computation consumes 3× the power of a DRAM read for the same data —
/// is encoded as `pim_internal_per_byte = 3 × dram_per_byte`.
///
/// # Examples
///
/// ```
/// use ianus_core::EnergyModel;
/// let m = EnergyModel::default();
/// // 3× read power at 16× internal bandwidth: 3/16 of a read per byte.
/// assert!((m.pim_internal_per_byte / m.dram_per_byte - 3.0 / 16.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// pJ per byte of external DRAM read/write.
    pub dram_per_byte: f64,
    /// pJ per DRAM row activation.
    pub dram_per_activation: f64,
    /// pJ per byte streamed through PIM PUs (3× read, per the paper).
    pub pim_internal_per_byte: f64,
    /// pJ per matrix-unit FLOP.
    pub mu_per_flop: f64,
    /// pJ per vector-unit lane-op.
    pub vu_per_op: f64,
    /// pJ per on-chip byte moved.
    pub onchip_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        let dram_per_byte = 56.0; // ≈7 pJ/bit GDDR6 I/O + array
                                  // The paper assumes PIM computing *power* is 3× DRAM-read power.
                                  // PIM streams data at the internal bandwidth — 16× the external
                                  // rate (512 vs 32 GB/s per channel) — so per byte it spends
                                  // 3/16 of an external read's energy. This is why offloading wins
                                  // in Figure 11 despite the higher instantaneous power.
        let internal_speedup = 16.0;
        EnergyModel {
            dram_per_byte,
            dram_per_activation: 1500.0,
            pim_internal_per_byte: 3.0 * dram_per_byte / internal_speedup,
            mu_per_flop: 0.4,
            vu_per_op: 2.0,
            onchip_per_byte: 1.0,
        }
    }
}

impl EnergyModel {
    /// Converts counters to energy.
    pub fn energy(&self, a: &Activity) -> EnergyBreakdown {
        let normal_bytes = (a.dram_read_bytes + a.dram_write_bytes) as f64;
        // Normal streams activate a row per 2 KB on average.
        let normal_acts = normal_bytes / 2048.0;
        EnergyBreakdown {
            dram_normal_pj: normal_bytes * self.dram_per_byte
                + normal_acts * self.dram_per_activation,
            pim_pj: a.pim_internal_bytes as f64 * self.pim_internal_per_byte
                + a.pim_activations as f64 * self.dram_per_activation
                + (a.pim_gb_bytes + a.pim_drain_bytes) as f64 * self.dram_per_byte,
            core_pj: a.mu_flops as f64 * self.mu_per_flop
                + a.vu_ops as f64 * self.vu_per_op
                + a.onchip_bytes as f64 * self.onchip_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_scale() {
        let mut a = Activity::new();
        a.dram_read_bytes = 100;
        let mut b = Activity::new();
        b.dram_read_bytes = 50;
        b.mu_flops = 10;
        a.merge(&b);
        assert_eq!(a.dram_read_bytes, 150);
        let s = a.scaled(2.0);
        assert_eq!(s.dram_read_bytes, 300);
        assert_eq!(s.mu_flops, 20);
    }

    #[test]
    fn pim_byte_cheaper_than_external_transfer_roundtrip() {
        // Moving a byte out of DRAM and MACing it on the NPU costs the
        // DRAM read + core FLOPs; PIM charges 3× read but no transfer.
        // For weight-streaming GEMV, PIM must win on our coefficients,
        // matching Figure 11's 10.5–13.4× normal-op reduction argument.
        let m = EnergyModel::default();
        let mut npu_mem = Activity::new();
        npu_mem.dram_read_bytes = 1_000_000;
        npu_mem.mu_flops = 1_000_000; // 1 MAC per weight byte is generous
        let mut ianus = Activity::new();
        ianus.pim_internal_bytes = 1_000_000;
        ianus.pim_activations = 1_000_000 / 2048;
        let e_npu = m.energy(&npu_mem).total_pj();
        let e_pim = m.energy(&ianus).total_pj();
        assert!(e_pim < e_npu, "pim {e_pim} vs npu-mem {e_npu}");
    }

    #[test]
    fn breakdown_totals() {
        let m = EnergyModel::default();
        let mut a = Activity::new();
        a.dram_read_bytes = 2048;
        a.vu_ops = 10;
        let e = m.energy(&a);
        assert!(e.total_pj() > 0.0);
        assert_eq!(e.total_pj(), e.dram_normal_pj + e.pim_pj + e.core_pj);
    }
}
