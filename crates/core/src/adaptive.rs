//! Algorithm 1: adaptive compile-time mapping of FC layers.
//!
//! For every FC command the compiler estimates, from analytic unit models,
//! the completion time on the NPU matrix unit (pipelined weight loading +
//! systolic compute, minus any prefetch hidden behind a preceding vector
//! op) and on PIM (token-sequential GEMV), and assigns the FC to whichever
//! finishes sooner — the paper's Algorithm 1. Figure 12 evaluates exactly
//! this decision for 4/8/16 input tokens across the GPT-2 family.

use ianus_model::FcShape;
use ianus_npu::{DmaEngine, MatrixUnit};
use ianus_pim::{GemvShape, PimModel};
use ianus_sim::Duration;

/// Execution unit chosen for an FC layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcUnit {
    /// NPU matrix unit with DMA-pipelined weight streaming.
    MatrixUnit,
    /// PIM GEMV (batch = token count).
    Pim,
}

/// The Algorithm 1 planner.
///
/// # Examples
///
/// ```
/// use ianus_core::adaptive::{AdaptivePlanner, FcUnit};
/// use ianus_core::SystemConfig;
/// use ianus_model::FcShape;
/// use ianus_sim::Duration;
///
/// let cfg = SystemConfig::ianus();
/// let planner = AdaptivePlanner::new(&cfg);
/// let fc = FcShape::new(1024, 1024); // one core's slice of a GPT-2 M FC
/// // Single-token FCs belong on PIM, large batches on the matrix unit.
/// assert_eq!(planner.choose(1, fc, Duration::ZERO), FcUnit::Pim);
/// assert_eq!(planner.choose(512, fc, Duration::ZERO), FcUnit::MatrixUnit);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptivePlanner {
    mu: MatrixUnit,
    dma: DmaEngine,
    pim: Option<PimModel>,
    /// Weight-streaming bandwidth one core sees when all cores load their
    /// slices concurrently (the striped bus is shared).
    per_core_load_gbps: f64,
    /// Weight bytes that fit one double-buffered WM chunk.
    wm_chunk_bytes: u64,
}

impl AdaptivePlanner {
    /// Builds the planner from a system configuration.
    pub fn new(cfg: &crate::SystemConfig) -> Self {
        let pim = if cfg.pim_channels() > 0 {
            Some(PimModel::new(cfg.pim_group_config()))
        } else {
            None
        };
        AdaptivePlanner {
            mu: MatrixUnit::new(&cfg.npu),
            dma: DmaEngine::new(&cfg.npu),
            pim,
            per_core_load_gbps: cfg.striped_bandwidth_gbps() / cfg.npu.cores as f64,
            wm_chunk_bytes: cfg.npu.wm_bytes / 3,
        }
    }

    /// Estimated completion time of `fc` on the matrix unit for `tokens`
    /// input rows, with `prefetch` of weight loading hidden behind a
    /// preceding vector-unit op (Algorithm 1 lines 5–11).
    pub fn mu_time(&self, tokens: u64, fc: FcShape, prefetch: Duration) -> Duration {
        let chunks = self.chunk_count(fc);
        let load_total = self.dma.offchip(fc.weight_bytes(), self.per_core_load_gbps)
            + self.dma.setup() * (chunks - 1);
        let compute_total = self.mu.gemm(tokens, fc.in_dim, fc.out_dim);
        // Double-buffered pipeline: bound by the slower stream, plus the
        // fill of one chunk of the faster one.
        let per_chunk_fill = compute_total.min(load_total) / chunks;
        let piped = load_total.max(compute_total) + per_chunk_fill;
        piped.saturating_sub(prefetch.min(load_total))
    }

    /// Estimated completion time on PIM (`tokens` sequential GEMVs).
    ///
    /// Returns `None` when the system has no PIM compute.
    pub fn pim_time(&self, tokens: u64, fc: FcShape) -> Option<Duration> {
        let pim = self.pim.as_ref()?;
        let shape = GemvShape::new(fc.out_dim, fc.in_dim).with_batch(tokens as u32);
        Some(pim.gemv(shape).total)
    }

    /// Algorithm 1's decision (lines 13–15).
    pub fn choose(&self, tokens: u64, fc: FcShape, prefetch: Duration) -> FcUnit {
        match self.pim_time(tokens, fc) {
            Some(pim) if pim < self.mu_time(tokens, fc, prefetch) => FcUnit::Pim,
            Some(_) => FcUnit::MatrixUnit,
            None => FcUnit::MatrixUnit,
        }
    }

    /// Number of WM-sized weight chunks the FC streams through.
    pub fn chunk_count(&self, fc: FcShape) -> u64 {
        fc.weight_bytes().div_ceil(self.wm_chunk_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;

    fn planner() -> AdaptivePlanner {
        AdaptivePlanner::new(&SystemConfig::ianus())
    }

    #[test]
    fn crossover_exists_between_1_and_128_tokens() {
        let p = planner();
        let fc = FcShape::new(1024, 1024);
        assert_eq!(p.choose(1, fc, Duration::ZERO), FcUnit::Pim);
        assert_eq!(p.choose(128, fc, Duration::ZERO), FcUnit::MatrixUnit);
        // The crossover is monotone: once MU wins it keeps winning.
        let mut pim_then_mu = true;
        let mut seen_mu = false;
        for t in 1..=128u64 {
            match p.choose(t, fc, Duration::ZERO) {
                FcUnit::MatrixUnit => seen_mu = true,
                FcUnit::Pim => {
                    if seen_mu {
                        pim_then_mu = false;
                    }
                }
            }
        }
        assert!(pim_then_mu, "mapping decision is not monotone in tokens");
    }

    #[test]
    fn mu_time_flat_under_128_tokens() {
        // Paper: the matrix unit shows similar performance for 4/8/16
        // tokens because it processes 128 in parallel.
        let p = planner();
        let fc = FcShape::new(1280, 1280);
        let t4 = p.mu_time(4, fc, Duration::ZERO);
        let t16 = p.mu_time(16, fc, Duration::ZERO);
        let ratio = t16.as_ns_f64() / t4.as_ns_f64();
        assert!(ratio < 1.05, "ratio {ratio}");
    }

    #[test]
    fn pim_time_linear_in_tokens() {
        let p = planner();
        let fc = FcShape::new(1024, 1024);
        let t1 = p.pim_time(1, fc).unwrap();
        let t8 = p.pim_time(8, fc).unwrap();
        let ratio = t8.as_ns_f64() / t1.as_ns_f64();
        assert!(ratio > 7.0 && ratio < 9.0, "ratio {ratio}");
    }

    #[test]
    fn prefetch_reduces_mu_time() {
        let p = planner();
        let fc = FcShape::new(2048, 2048);
        let without = p.mu_time(8, fc, Duration::ZERO);
        let with = p.mu_time(8, fc, Duration::from_us(5));
        assert!(with < without);
    }

    #[test]
    fn no_pim_always_matrix_unit() {
        let p = AdaptivePlanner::new(&SystemConfig::npu_mem());
        assert_eq!(
            p.choose(1, FcShape::new(4096, 4096), Duration::ZERO),
            FcUnit::MatrixUnit
        );
    }
}
