#!/usr/bin/env sh
# CI gate: the serving engine's canonical smoke benchmark must stay
# bit-identical to the committed baseline.
#
# Regenerates `policy_sweep --smoke --bench-json` with the current
# binary and diffs it against `benches/canonical/BENCH_serving.json`
# with the machine-dependent `"wall_s"` lines stripped from both
# sides. Every remaining field (preemption/recompute schedules, DMA
# seconds, percentile latencies, goodput) is deterministic, so ANY
# diff means the engine's schedule drifted — the event-driven core is
# pinned to the historical step-scan schedules and this script is the
# cheap whole-trajectory check on top of the unit pins.
#
# Usage: ./benches/compare_canonical_results.sh
#   (run from the repo root; builds the example if needed)

set -eu

cd "$(dirname "$0")/.."

CANONICAL=benches/canonical/BENCH_serving.json
CURRENT=$(mktemp)
trap 'rm -f "$CURRENT" "$CURRENT.strip" "$CANONICAL.strip"' EXIT

cargo build --release --example policy_sweep --quiet
./target/release/examples/policy_sweep --smoke --bench-json "$CURRENT" >/dev/null

grep -v '"wall_s"' "$CANONICAL" >"$CANONICAL.strip"
grep -v '"wall_s"' "$CURRENT" >"$CURRENT.strip"

if ! diff -u "$CANONICAL.strip" "$CURRENT.strip"; then
    echo "FAIL: serving benchmark drifted from benches/canonical/BENCH_serving.json" >&2
    echo "      (if the change is intentional, regenerate the canonical file with" >&2
    echo "       ./target/release/examples/policy_sweep --smoke --bench-json $CANONICAL)" >&2
    exit 1
fi
echo "OK: canonical serving benchmark is bit-identical (wall-clock ignored)"
