#!/usr/bin/env sh
# CI gate: the serving engine's canonical smoke benchmarks must stay
# bit-identical to the committed baselines.
#
# Regenerates each example's `--smoke --bench-json` output with the
# current binary and diffs it against the committed file under
# `benches/canonical/`, with the machine-dependent `"wall_s"` lines
# stripped from both sides. Every remaining field (preemption and
# recompute schedules, DMA seconds, percentile latencies, goodput,
# migration counts, bisected sustainable rates) is deterministic, so
# ANY diff means the engine's schedule drifted — the event-driven core
# is pinned to the historical step-scan schedules and this script is
# the cheap whole-trajectory check on top of the unit pins.
#
# Usage: ./benches/compare_canonical_results.sh
#   (run from the repo root; builds the examples if needed)

set -eu

cd "$(dirname "$0")/.."

fail=0

# compare <example> <canonical-json>
compare() {
    example=$1
    canonical=$2
    current=$(mktemp)

    cargo build --release --example "$example" --quiet
    "./target/release/examples/$example" --smoke --bench-json "$current" >/dev/null

    grep -v '"wall_s"' "$canonical" >"$canonical.strip"
    grep -v '"wall_s"' "$current" >"$current.strip"

    if ! diff -u "$canonical.strip" "$current.strip"; then
        echo "FAIL: $example benchmark drifted from $canonical" >&2
        echo "      (if the change is intentional, regenerate the canonical file with" >&2
        echo "       ./target/release/examples/$example --smoke --bench-json $canonical)" >&2
        fail=1
    else
        echo "OK: canonical $example benchmark is bit-identical (wall-clock ignored)"
    fi
    rm -f "$current" "$current.strip" "$canonical.strip"
}

compare policy_sweep benches/canonical/BENCH_serving.json
compare disaggregated benches/canonical/BENCH_disaggregated.json
compare agentic_workflows benches/canonical/BENCH_workflows.json
compare traffic_shapes benches/canonical/BENCH_traffic.json

exit "$fail"
