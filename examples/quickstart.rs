//! Quickstart: simulate one datacenter request on IANUS and its baselines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Runs a 128-token prompt with 64 generated tokens of GPT-2 XL through
//! the IANUS simulator, the NPU-MEM baseline (same NPU, plain GDDR6), the
//! analytical A100 model and the DFX model, and prints latencies with a
//! per-class breakdown.

use ianus::prelude::*;

fn main() {
    let model = ModelConfig::gpt2_xl();
    let request = RequestShape::new(128, 64);
    println!(
        "model: {} ({:.2}B params, {:.1} GB BF16)",
        model.name,
        model.param_count() as f64 / 1e9,
        model.param_bytes() as f64 / 1e9,
    );
    println!(
        "request: {} input tokens, {} output tokens\n",
        request.input, request.output
    );

    // IANUS: unified NPU-PIM memory with PIM Access Scheduling.
    let mut ianus = IanusSystem::new(SystemConfig::ianus());
    let r = ianus.run_request(&model, request);
    println!(
        "IANUS      total {:>9.2} ms  (summarization {:.2} ms, generation {:.2} ms,",
        r.total.as_ms_f64(),
        r.summarization.as_ms_f64(),
        r.generation.as_ms_f64()
    );
    println!(
        "           {:.2} ms per generated token, {:.1} TFLOPS achieved)",
        r.per_token_latency().map(|d| d.as_ms_f64()).unwrap_or(0.0),
        r.throughput_tflops()
    );
    println!("           busy time by operation class:");
    for class in OpClass::ALL {
        let t = r.breakdown.get(class);
        if t.as_ns_f64() > 0.0 {
            println!(
                "             {:<24} {:>9.2} ms",
                class.label(),
                t.as_ms_f64()
            );
        }
    }

    // NPU-MEM: identical NPU, standard GDDR6, no PIM compute.
    let mut npu_mem = IanusSystem::new(SystemConfig::npu_mem());
    let n = npu_mem.run_request(&model, request);
    println!(
        "\nNPU-MEM    total {:>9.2} ms  ({:.1}x slower than IANUS)",
        n.total.as_ms_f64(),
        n.total.as_ns_f64() / r.total.as_ns_f64()
    );

    // Analytical baselines.
    let gpu = GpuModel::a100().request_latency(&model, request);
    let dfx = DfxModel::four_fpga().request_latency(&model, request);
    println!(
        "A100 (HF)  total {:>9.2} ms  ({:.1}x slower)",
        gpu.as_ms_f64(),
        gpu.as_ns_f64() / r.total.as_ns_f64()
    );
    println!(
        "DFX x4     total {:>9.2} ms  ({:.1}x slower)",
        dfx.as_ms_f64(),
        dfx.as_ns_f64() / r.total.as_ns_f64()
    );

    println!(
        "\nenergy: {:.2} mJ dynamic ({:.0}% normal DRAM, {:.0}% PIM ops, {:.0}% NPU cores)",
        r.energy.total_pj() / 1e9,
        r.energy.dram_normal_pj / r.energy.total_pj() * 100.0,
        r.energy.pim_pj / r.energy.total_pj() * 100.0,
        r.energy.core_pj / r.energy.total_pj() * 100.0,
    );
}
