//! Serving-queue study: how many interactive requests per second can a
//! device — or a cluster of devices — sustain, and what happens to tail
//! latency near saturation?
//!
//! ```text
//! cargo run --release --example serving_queue
//! ```
//!
//! Uses the [`ServingSim`] cluster engine over the unified [`Backend`]
//! trait: Poisson arrivals of a mixed request distribution, pluggable
//! dispatch, p50/p95/p99 sojourn times, and a sustainable-rate search.

use ianus::prelude::*;

fn print_sweep(label: &str, mut sim: ServingSim, model: &ModelConfig) {
    println!("=== {label} ===");
    println!(
        "{:>9} | {:>8} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "req/s", "util", "p50 ms", "p95 ms", "p99 ms", "ttft p99", "itl p99", "stable"
    );
    // One engine across the sweep: service/step memos are warm after the
    // first rate, so later rates are queueing-only passes.
    for rate in [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0] {
        sim.set_rate(rate);
        let report = sim.run(model);
        println!(
            "{:>9.1} | {:>7.1}% {:>10.0} {:>10.0} {:>10.0} {:>9.0} {:>9.2} {:>8}",
            rate,
            report.utilization * 100.0,
            report.p50_sojourn.as_ms_f64(),
            report.p95_sojourn.as_ms_f64(),
            report.p99_sojourn.as_ms_f64(),
            report.ttft.p99.as_ms_f64(),
            report.inter_token.p99.as_ms_f64(),
            if report.stable() { "yes" } else { "NO" }
        );
    }
    println!();
}

fn main() {
    let model = ModelConfig::gpt2_l();
    println!(
        "serving {} — interactive mix (60% chat, 30% completion, 10% long)\n",
        model.name
    );

    // One device: the PIM offload multiplies the sustainable rate.
    for (name, system) in [
        ("IANUS, 1 replica", SystemConfig::ianus()),
        ("NPU-MEM, 1 replica", SystemConfig::npu_mem()),
    ] {
        print_sweep(
            name,
            ServingSim::new(ServingConfig::interactive(1.0, 400)).replica(IanusSystem::new(system)),
            &model,
        );
    }

    // Cluster scaling: 4 IANUS replicas behind least-loaded dispatch.
    print_sweep(
        "IANUS, 4 replicas (least-loaded)",
        ServingSim::new(ServingConfig::interactive(1.0, 400))
            .cluster(4, |_| IanusSystem::new(SystemConfig::ianus()))
            .dispatch(DispatchPolicy::LeastLoaded),
        &model,
    );

    // Iteration-level continuous batching on the same 4-replica cluster:
    // admission is immediate (low TTFT) but IANUS's serialized decode
    // batches stretch inter-token latency.
    print_sweep(
        "IANUS, 4 replicas (continuous batching, max_batch 4)",
        ServingSim::new(ServingConfig::interactive(1.0, 400))
            .cluster(4, |_| IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel { max_batch: 4 }),
        &model,
    );

    // Sustainable-rate search per cluster size, in both scheduling modes.
    println!("sustainable interactive rate (p99-stable), by cluster size:");
    println!(
        "  {:>10} | {:>13} | {:>21}",
        "replicas", "request-level", "iteration (batch 4)"
    );
    for replicas in [1usize, 2, 4, 8] {
        let mut req_sim = ServingSim::new(ServingConfig::interactive(1.0, 400))
            .cluster(replicas, |_| IanusSystem::new(SystemConfig::ianus()))
            .dispatch(DispatchPolicy::LeastLoaded);
        let req_rate = req_sim.sustainable_rate(&model, 0.5, 256.0);
        let mut it_sim = ServingSim::new(ServingConfig::interactive(1.0, 400))
            .cluster(replicas, |_| IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel { max_batch: 4 });
        let it_rate = it_sim.sustainable_rate(&model, 0.5, 256.0);
        println!("  {replicas:>10} | {req_rate:>11.1} r/s | {it_rate:>17.1} r/s");
    }
    println!("\nthe PIM offload multiplies the per-device rate; replicas scale it near-linearly.");
    println!("batching buys IANUS nothing (its PIM decode serializes the batch, stretching");
    println!("p99 tails for zero extra throughput) — the paper's case for batch-1 serving.");
}
