//! Serving-queue study: how many interactive requests per second can one
//! device sustain, and what happens to tail latency near saturation?
//!
//! ```text
//! cargo run --release --example serving_queue
//! ```
//!
//! Uses the queueing layer over the device simulator: Poisson arrivals of
//! a mixed request distribution, FCFS service, p50/p95/p99 sojourn times.

use ianus::prelude::*;
use ianus::system::serving::{simulate, ServingConfig};

fn main() {
    let model = ModelConfig::gpt2_l();
    println!("serving {} on one device, interactive mix (60% chat, 30% completion, 10% long)\n", model.name);
    for (name, system) in [
        ("IANUS", SystemConfig::ianus()),
        ("NPU-MEM", SystemConfig::npu_mem()),
    ] {
        println!("=== {name} ===");
        println!(
            "{:>9} | {:>8} {:>10} {:>10} {:>10} {:>8}",
            "req/s", "util", "p50 ms", "p95 ms", "p99 ms", "stable"
        );
        for rate in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
            let report = simulate(system, &model, &ServingConfig::interactive(rate, 400));
            println!(
                "{:>9.1} | {:>7.1}% {:>10.0} {:>10.0} {:>10.0} {:>8}",
                rate,
                report.utilization * 100.0,
                report.p50_sojourn.as_ms_f64(),
                report.p95_sojourn.as_ms_f64(),
                report.p99_sojourn.as_ms_f64(),
                if report.stable() { "yes" } else { "NO" }
            );
        }
        println!();
    }
    println!("the PIM offload multiplies the sustainable interactive request rate");
}
