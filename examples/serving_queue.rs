//! Serving-queue study: how many interactive requests per second can a
//! device — or a cluster of devices — sustain, and what happens to tail
//! latency near saturation?
//!
//! ```text
//! cargo run --release --example serving_queue [-- --smoke]
//! ```
//!
//! (`--smoke` runs reduced request counts and skips the
//! sustainable-rate searches, for CI.)
//!
//! Uses the [`ServingSim`] cluster engine over the unified [`Backend`]
//! trait: Poisson arrivals of a mixed request distribution, pluggable
//! dispatch, p50/p95/p99 sojourn times, and a sustainable-rate search.

use ianus::prelude::*;

fn print_sweep(label: &str, mut sim: ServingSim, model: &ModelConfig) {
    println!("=== {label} ===");
    println!(
        "{:>9} | {:>8} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "req/s", "util", "p50 ms", "p95 ms", "p99 ms", "ttft p99", "itl p99", "stable"
    );
    // One engine across the sweep: service/step memos are warm after the
    // first rate, so later rates are queueing-only passes.
    for rate in [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0] {
        sim.set_rate(rate);
        let report = sim.run(model);
        println!(
            "{:>9.1} | {:>7.1}% {:>10.0} {:>10.0} {:>10.0} {:>9.0} {:>9.2} {:>8}",
            rate,
            report.utilization * 100.0,
            report.sojourn.p50.as_ms_f64(),
            report.sojourn.p95.as_ms_f64(),
            report.sojourn.p99.as_ms_f64(),
            report.ttft.p99.as_ms_f64(),
            report.inter_token.p99.as_ms_f64(),
            if report.stable() { "yes" } else { "NO" }
        );
    }
    println!();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 120 } else { 400 };
    let model = ModelConfig::gpt2_l();
    println!(
        "serving {} — interactive mix (60% chat, 30% completion, 10% long)\n",
        model.name
    );

    // One device: the PIM offload multiplies the sustainable rate.
    for (name, system) in [
        ("IANUS, 1 replica", SystemConfig::ianus()),
        ("NPU-MEM, 1 replica", SystemConfig::npu_mem()),
    ] {
        print_sweep(
            name,
            ServingSim::new(ServingConfig::interactive(1.0, n)).replica(IanusSystem::new(system)),
            &model,
        );
    }

    // Cluster scaling: 4 IANUS replicas behind least-loaded dispatch.
    print_sweep(
        "IANUS, 4 replicas (least-loaded)",
        ServingSim::new(ServingConfig::interactive(1.0, n))
            .cluster(4, |_| IanusSystem::new(SystemConfig::ianus()))
            .dispatch(DispatchPolicy::LeastLoaded),
        &model,
    );

    // Iteration-level continuous batching on the same 4-replica cluster:
    // admission is immediate (low TTFT) but IANUS's serialized decode
    // batches stretch inter-token latency.
    print_sweep(
        "IANUS, 4 replicas (continuous batching, max_batch 4)",
        ServingSim::new(ServingConfig::interactive(1.0, n))
            .cluster(4, |_| IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::iteration(4)),
        &model,
    );

    // Sustainable-rate search per cluster size, in both scheduling
    // modes (skipped under --smoke: each search is dozens of runs).
    if !smoke {
        println!("sustainable interactive rate (p99-stable), by cluster size:");
        println!(
            "  {:>10} | {:>13} | {:>21}",
            "replicas", "request-level", "iteration (batch 4)"
        );
        for replicas in [1usize, 2, 4, 8] {
            let mut req_sim = ServingSim::new(ServingConfig::interactive(1.0, n))
                .cluster(replicas, |_| IanusSystem::new(SystemConfig::ianus()))
                .dispatch(DispatchPolicy::LeastLoaded);
            let req_rate = req_sim.sustainable_rate(&model, 0.5, 256.0);
            let mut it_sim = ServingSim::new(ServingConfig::interactive(1.0, n))
                .cluster(replicas, |_| IanusSystem::new(SystemConfig::ianus()))
                .scheduling(Scheduling::iteration(4));
            let it_rate = it_sim.sustainable_rate(&model, 0.5, 256.0);
            println!("  {replicas:>10} | {req_rate:>11.1} r/s | {it_rate:>17.1} r/s");
        }
        println!(
            "\nthe PIM offload multiplies the per-device rate; replicas scale it near-linearly."
        );
        println!("batching buys IANUS nothing (its PIM decode serializes the batch, stretching");
        println!("p99 tails for zero extra throughput) — the paper's case for batch-1 serving.");
    }

    // Chunked prefill under a long-prompt priority mix: monolithic
    // prefill stalls every resident decode for a whole 896-token
    // prompt; chunking bounds the stall to one chunk, collapsing the
    // interactive ITL tail at the same arrival rate. Preemption on top
    // admits optimistically against *current* KV and swaps batch-tier
    // sequences out when growth bites.
    let model = ModelConfig::gpt2_m();
    println!(
        "\nlong-prompt mix (75% chat @128, 25% batch-tier drafts @896) of {} on one",
        model.name
    );
    println!("IANUS device at 12 req/s, iteration-level, max batch 4:");
    println!(
        "  {:<28} {:>9} {:>9} {:>10} {:>12}",
        "prefill policy", "itl p99", "ttft p99", "sojourn p99", "preemptions"
    );
    for (label, prefill_chunk, preempt) in [
        ("monolithic", None, false),
        ("chunked (128)", Some(128u64), false),
        ("chunked (128) + preempt", Some(128), true),
    ] {
        let r = ServingSim::new(ServingConfig::long_prompt(
            12.0,
            if smoke { 100 } else { 300 },
        ))
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 4,
            prefill_chunk,
            preempt,
        })
        .run(&model);
        println!(
            "  {:<28} {:>6.1} ms {:>6.0} ms {:>7.0} ms {:>12}",
            label,
            r.inter_token.p99.as_ms_f64(),
            r.ttft.p99.as_ms_f64(),
            r.sojourn.p99.as_ms_f64(),
            r.preemptions,
        );
    }
    println!("chunking trades a slightly fatter ITL body for a ~4x thinner tail —");
    println!("the long prompts pay with more, shorter stalls instead of rare long ones.");

    // KV pressure needs big caches: GPT-2 XL (512,512) drafts hold
    // ~300 MB of KV each at final length, so optimistic (current-length)
    // admission overcommits the 8 GB device and growth forces
    // evictions. Priorities decide who swaps: the batch tier absorbs
    // the preemptions while interactive drafts keep their residency.
    let model = ModelConfig::gpt2_xl();
    let shape = RequestShape::new(512, 512);
    let cfg = ServingConfig {
        arrival_rate_hz: 4.0,
        requests: if smoke { 60 } else { 120 },
        seed: 0x5EED,
        mix: vec![
            RequestClass::new(shape, 0.5),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    };
    let r = ServingSim::new(cfg)
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 32,
            prefill_chunk: Some(128),
            preempt: true,
        })
        .run(&model);
    println!(
        "\nKV-pressure preemption: {} (512,512) drafts on one IANUS device (peak \
         batch {}, peak KV {:.0}%):",
        model.name,
        r.peak_batch,
        r.peak_kv_occupancy * 100.0
    );
    println!(
        "  {} swap-outs across {} of {} requests (max {} per request)",
        r.preemptions, r.preempted_requests, r.completed, r.max_preemptions
    );
    println!(
        "  interactive tier absorbed {} preemptions, batch tier {}",
        r.per_class[0].preemptions, r.per_class[1].preemptions
    );
    println!(
        "  swapped KV peaked at {} MiB of the 32 GiB host pool; {:.2} s of swap DMA \
         stalled the batch",
        r.host_kv_peak_bytes >> 20,
        r.swap_stall.as_secs_f64(),
    );
    println!("  (see policy_sweep for finite host pools, recompute eviction, and overlapped DMA)");
}
