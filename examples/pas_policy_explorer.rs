//! PIM Access Scheduling policy explorer: sweep every PAS knob — FC
//! mapping, QKᵀ/SV mapping, naive vs overlap-aware scheduling — on one
//! workload and show what each decision is worth.
//!
//! ```text
//! cargo run --release --example pas_policy_explorer [input] [output]
//! ```

use ianus::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let input: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let output: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let request = RequestShape::new(input, output);
    let model = ModelConfig::gpt2_xl();
    println!(
        "exploring PAS policies for {} at ({input},{output})\n",
        model.name
    );

    let fc_choices = [
        ("FC: adaptive (Alg. 1)", FcMapping::Adaptive),
        ("FC: always matrix unit", FcMapping::MatrixUnit),
        ("FC: always PIM", FcMapping::Pim),
    ];
    let attn_choices = [
        ("QKT/SV: matrix unit", AttnMapping::MatrixUnit),
        ("QKT/SV: PIM", AttnMapping::Pim),
    ];
    let sched_choices = [
        ("overlap-aware", Schedule::Overlapped),
        ("naive", Schedule::Naive),
    ];

    let mut best: Option<(f64, String)> = None;
    let mut worst: Option<(f64, String)> = None;
    println!(
        "{:<26} {:<22} {:<14} {:>12}",
        "FC mapping", "attention mapping", "schedule", "latency ms"
    );
    println!("{}", "-".repeat(78));
    for (fc_label, fc) in fc_choices {
        for (attn_label, attention) in attn_choices {
            for (sched_label, schedule) in sched_choices {
                let cfg = SystemConfig::ianus().with_pas(PasPolicy {
                    fc,
                    attention,
                    schedule,
                });
                let mut sys = IanusSystem::new(cfg);
                let ms = sys.run_request(&model, request).total.as_ms_f64();
                println!(
                    "{:<26} {:<22} {:<14} {:>12.1}",
                    fc_label, attn_label, sched_label, ms
                );
                let label = format!("{fc_label} + {attn_label} + {sched_label}");
                if best.as_ref().is_none_or(|(b, _)| ms < *b) {
                    best = Some((ms, label.clone()));
                }
                if worst.as_ref().is_none_or(|(w, _)| ms > *w) {
                    worst = Some((ms, label));
                }
            }
        }
    }
    let (best_ms, best_label) = best.unwrap();
    let (worst_ms, worst_label) = worst.unwrap();
    println!("\nbest : {best_ms:>9.1} ms — {best_label}");
    println!("worst: {worst_ms:>9.1} ms — {worst_label}");
    println!(
        "policy spread: {:.2}x (the paper's unified-memory-aware scheduling is worth 34% on average)",
        worst_ms / best_ms
    );
}
