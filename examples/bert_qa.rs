//! BERT question-answering study (the paper's Table 3 QA workload):
//! throughput and utilization on IANUS versus the A100, plus the effect
//! of the transformer-aware NPU microarchitecture.
//!
//! ```text
//! cargo run --release --example bert_qa
//! ```
//!
//! BERT is encoder-only — no generation stage, no matrix-vector FCs — so
//! PIM is idle and everything rides the NPU's matrix/vector units. The
//! paper's point (Figure 14) is that on-chip data manipulation for
//! self-attention and the dedicated vector unit keep utilization far
//! above the GPU's even when raw FLOPS are lower.

use ianus::prelude::*;

fn main() {
    let gpu = GpuModel::a100();
    let ianus_peak = SystemConfig::ianus().npu.peak_tflops();
    println!(
        "IANUS peak {ianus_peak:.0} TFLOPS vs A100 peak {:.0} TFLOPS ({:.1}x more)\n",
        gpu.peak_tflops,
        gpu.peak_tflops / ianus_peak
    );
    for model in ModelConfig::bert_family() {
        println!(
            "=== {} ({:.0}M params, {} blocks) ===",
            model.name,
            model.param_count() as f64 / 1e6,
            model.blocks
        );
        println!(
            "{:>7} | {:>12} {:>12} | {:>10} {:>10}",
            "tokens", "IANUS ms", "A100 ms", "IANUS util", "A100 util"
        );
        for tokens in [128u64, 256, 512] {
            let req = RequestShape::new(tokens, 1);
            let mut sys = IanusSystem::new(SystemConfig::ianus());
            let r = sys.run_request(&model, req);
            let g_ms = gpu.request_latency(&model, req).as_ms_f64();
            let g_util = gpu.throughput_tflops(&model, req) / gpu.peak_tflops;
            println!(
                "{:>7} | {:>12.2} {:>12.2} | {:>9.1}% {:>9.1}%",
                tokens,
                r.total.as_ms_f64(),
                g_ms,
                r.utilization(ianus_peak) * 100.0,
                g_util * 100.0
            );
        }
        // QA service view: questions answered per second at 384 tokens
        // (the SQuAD-style context length).
        let req = RequestShape::new(384, 1);
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let r = sys.run_request(&model, req);
        println!(
            "QA service rate at 384-token contexts: {:.0} questions/s (IANUS) vs {:.0}/s (A100)\n",
            1000.0 / r.total.as_ms_f64(),
            1000.0 / gpu.request_latency(&model, req).as_ms_f64()
        );
    }
}
