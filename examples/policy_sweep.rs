//! Eviction-policy sweep under KV pressure and a **finite host pool**:
//! the PR 3 preemption scenario — GPT-2 XL (512,512) drafts
//! overcommitting one 8 GB IANUS device — replayed under every built-in
//! [`EvictionPolicy`], with an SLO on the interactive tier so the
//! policies can be *scored*, and host DRAM capped at 1 GiB so swap
//! space is a real resource: swap-outs that would overflow the pool
//! fall back to recompute-based eviction (drop the KV, re-prefill on
//! re-admission).
//!
//! ```text
//! cargo run --release --example policy_sweep [-- --smoke] [-- --bench-json PATH]
//! ```
//!
//! (`--smoke` runs a reduced request count for CI; `--bench-json PATH`
//! additionally writes the sweep's metrics as a machine-readable JSON
//! document — CI archives it as `BENCH_serving.json` so serving-layer
//! regressions show up as artifact diffs.)
//!
//! The scenario: a 50/50 mix of interactive and batch-tier (512,512)
//! drafts at 4 req/s (heavy overload — the device sustains ~0.4), max
//! batch 32, 128-token prefill chunks, preemptive admission. Every
//! sequence's KV grows to ~300 MB, so the optimistically admitted batch
//! outgrows device memory and the scheduler must pick victims — and
//! with only ~3 sequences' worth of host swap space, *how* each victim
//! leaves matters as much as who is picked:
//!
//! * `lowest-priority-youngest` (default) — tier-targeted: the batch
//!   tier absorbs essentially every eviction.
//! * `largest-kv` — frees the most memory per pressure event, but its
//!   big victims rarely fit the pool: nearly every eviction degrades
//!   to a recompute. Thin resident batches keep serialized decode
//!   iterations short, which is what the per-request ITL SLO scores —
//!   the best attainment here.
//! * `least-progress` — loses the least completed work per eviction.
//! * `cheapest` — cost-per-freed-token victims (transfer both ways vs
//!   re-prefill, pool-aware).
//!
//! The closing section changes the regime: on a host link throttled to
//! 4 GB/s, pure largest-KV pays tens of seconds of serialized swap
//! stall while the cost-aware bundle (`cheapest` victims + `cheapest`
//! mechanism) notices recompute is cheaper, avoids the link entirely,
//! and wins on **goodput** — the ROADMAP's cost-aware-victim trade
//! made measurable.
//!
//! All policies preserve the liveness contract (every preempted
//! sequence completes; the host pool never overflows) — enforced by
//! the engine and regression-tested in `tests/{policy_api,host_pool}.rs`.

use ianus::prelude::*;

/// The PR 3 preemption scenario plus a TTFT/ITL SLO on the interactive
/// class.
fn scenario(requests: u64) -> ServingConfig {
    let shape = RequestShape::new(512, 512);
    let slo = Slo::new(
        Duration::from_secs_f64(60.0), // TTFT: queue + chunked prefill
        Duration::from_ms(150),        // ITL p99: decode + swap dwells
    );
    ServingConfig {
        arrival_rate_hz: 4.0,
        requests,
        seed: 0x5EED,
        mix: vec![
            RequestClass::new(shape, 0.5).with_slo(slo),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    }
}

const EVICTIONS: [&str; 4] = [
    "lowest-priority-youngest",
    "largest-kv",
    "least-progress",
    "cheapest",
];

fn bundle(eviction: &str) -> SchedulerPolicy {
    match eviction {
        "lowest-priority-youngest" => {
            SchedulerPolicy::default().with_eviction(LowestPriorityYoungest)
        }
        "largest-kv" => SchedulerPolicy::default().with_eviction(LargestKv),
        "least-progress" => SchedulerPolicy::default().with_eviction(LeastProgress),
        "cheapest" => SchedulerPolicy::default().with_eviction(CheapestEviction),
        _ => unreachable!(),
    }
}

/// One sweep row as a JSON object (no serde in-tree; the report is flat
/// enough to format by hand). `wall_s` is the engine's wall-clock for
/// the run — machine-dependent by nature, so the canonical compare
/// (`benches/compare_canonical_results.sh`) strips it; the archived
/// trajectory keeps it.
fn bench_row(label: &str, r: &ServingReport, wall_s: f64) -> String {
    format!(
        "    {{\"policy\": {label:?}, \"preemptions\": {}, \"recomputes\": {}, \
         \"host_kv_peak_occupancy\": {:.6}, \"ttft_p99_ms\": {:.3}, \"itl_p99_ms\": {:.3}, \
         \"kv_dma_s\": {:.6}, \"swap_stall_s\": {:.6}, \"slo_attainment\": {:.6}, \
         \"goodput_rps\": {:.6},\n     \"wall_s\": {wall_s:.6}}}",
        r.preemptions,
        r.recomputes,
        r.host_kv_peak_occupancy,
        r.ttft.p99.as_ms_f64(),
        r.inter_token.p99.as_ms_f64(),
        r.kv_dma.as_secs_f64(),
        r.swap_stall.as_secs_f64(),
        r.slo_attainment,
        r.goodput_rps,
    )
}

/// Runs the engine and returns the report with its wall-clock seconds.
fn timed_run(sim: &mut ServingSim, model: &ModelConfig) -> (ServingReport, f64) {
    let t0 = std::time::Instant::now();
    let r = sim.run(model);
    (r, t0.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let bench_json = args
        .iter()
        .position(|a| a == "--bench-json")
        .map(|i| args.get(i + 1).expect("--bench-json needs a PATH").clone());
    let requests = if smoke { 40 } else { 120 };
    let model = ModelConfig::gpt2_xl();
    println!(
        "eviction-policy sweep: {} (512,512) drafts, 50% interactive (SLO: TTFT 60 s, \
         ITL p99 150 ms) + 50% batch tier,",
        model.name
    );
    println!(
        "one IANUS device, 4 req/s x {requests} requests, iteration-level (max batch 32, \
         chunk 128, preempt),"
    );
    println!("FCFS admission, FIFO re-admission, 1 GiB host KV pool (swap mechanism)\n");
    println!(
        "{:<26} {:>7} {:>10} {:>9} {:>11} {:>10} {:>9} {:>8}",
        "eviction policy",
        "evicts",
        "recomputes",
        "host occ",
        "itl p99 ms",
        "dma/stall",
        "SLO att.",
        "goodput"
    );

    // One engine for the whole sweep: the policy does not change device
    // costs, so after the first run every probe is queueing-only.
    let mut sim = ServingSim::new(scenario(requests))
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 32,
            prefill_chunk: Some(128),
            preempt: true,
        })
        .host_kv_pool(Some(1 << 30));

    let mut best: Option<(String, f64)> = None;
    let mut rows = Vec::new();
    for eviction in EVICTIONS {
        sim.set_policy(bundle(eviction));
        let (r, wall_s) = timed_run(&mut sim, &model);
        rows.push(bench_row(eviction, &r, wall_s));
        assert_eq!(r.completed, requests, "liveness: every request completes");
        assert!(
            r.host_kv_peak_occupancy <= 1.0,
            "the host pool is a hard bound"
        );
        assert!(r.recomputes > 0, "a 1 GiB pool must force recomputes");
        println!(
            "{:<26} {:>7} {:>10} {:>8.0}% {:>11.1} {:>4.1}/{:<4.1} {:>8.1}% {:>8.2}",
            eviction,
            r.preemptions,
            r.recomputes,
            r.host_kv_peak_occupancy * 100.0,
            r.inter_token.p99.as_ms_f64(),
            r.kv_dma.as_secs_f64(),
            r.swap_stall.as_secs_f64(),
            r.slo_attainment * 100.0,
            r.goodput_rps,
        );
        let att = r.slo_attainment;
        if best.as_ref().is_none_or(|(_, b)| att > *b) {
            best = Some((eviction.to_string(), att));
        }
    }

    let (winner, att) = best.expect("four policies ran");
    println!(
        "\n{winner} maximizes SLO attainment ({:.1}% within SLO) under the finite pool.",
        att * 100.0
    );
    println!(
        "With ~3 sequences of swap space, largest-kv's big victims overflow the pool and \
         degrade to\nrecomputes — yet freeing the most KV per eviction still keeps resident \
         batches thin and\nserialized decode iterations short, which is what the per-request \
         ITL SLO actually scores."
    );

    // Overlapped DMA on the same finite-pool scenario: the transfers
    // that do happen hide behind decode instead of stalling the batch.
    sim.set_policy(SchedulerPolicy::default());
    let serial = sim.run(&model);
    sim.set_overlap_dma(true);
    let overlapped = sim.run(&model);
    sim.set_overlap_dma(false);
    println!(
        "\noverlapped DMA (default policy): swap stall {:.2} s -> {:.2} s of {:.2} s DMA",
        serial.swap_stall.as_secs_f64(),
        overlapped.swap_stall.as_secs_f64(),
        overlapped.kv_dma.as_secs_f64(),
    );
    assert!(overlapped.swap_stall <= serial.swap_stall);

    // The cost-aware headline: throttle the host link to 4 GB/s and
    // give it back a roomy pool. Pure largest-KV now pays the biggest
    // possible transfers over the bottleneck link; the cost-aware
    // bundle recomputes instead and wins on goodput.
    println!("\n--- host link throttled to 4 GB/s (32 GiB pool) ---");
    let mut slow = SystemConfig::ianus();
    slow.pcie_gbps = 4.0;
    let mut sim = ServingSim::new(scenario(requests))
        .replica(IanusSystem::new(slow))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 32,
            prefill_chunk: Some(128),
            preempt: true,
        });
    println!(
        "{:<34} {:>7} {:>10} {:>11} {:>9} {:>8}",
        "bundle", "evicts", "recomputes", "stall s", "SLO att.", "goodput"
    );
    let mut goodput = Vec::new();
    for (label, policy) in [
        (
            "largest-kv + swap",
            SchedulerPolicy::default().with_eviction(LargestKv),
        ),
        (
            "cheapest + cheapest (cost-aware)",
            SchedulerPolicy::default()
                .with_eviction(CheapestEviction)
                .with_mechanism(EvictionMechanism::Cheapest),
        ),
    ] {
        sim.set_policy(policy);
        let (r, wall_s) = timed_run(&mut sim, &model);
        rows.push(bench_row(&format!("slow-link/{label}"), &r, wall_s));
        assert_eq!(r.completed, requests);
        println!(
            "{:<34} {:>7} {:>10} {:>11.2} {:>8.1}% {:>8.2}",
            label,
            r.preemptions,
            r.recomputes,
            r.swap_stall.as_secs_f64(),
            r.slo_attainment * 100.0,
            r.goodput_rps,
        );
        goodput.push(r.goodput_rps);
    }
    assert!(
        goodput[1] > goodput[0],
        "cost-aware eviction must beat pure largest-KV on the slow link"
    );
    println!(
        "\nWhen the host link is the bottleneck, weighing kv_transfer both ways against \
         recompute is\nworth {:.0}% goodput over pure largest-KV — victim *cost* is a real \
         policy axis, not a tie.",
        (goodput[1] / goodput[0] - 1.0) * 100.0
    );

    // Parallel rate sweep over the cost-aware bundle: one probe per
    // rate on `std::thread::scope` threads (cloned engines), results in
    // rate order — the same reports a serial loop would produce, in a
    // fraction of the wall-clock.
    let sweep: Vec<f64> = [0.25, 0.5, 1.0, 2.0].to_vec();
    let t0 = std::time::Instant::now();
    let reports = sim.sweep_rates(&model, &sweep);
    let sweep_wall = t0.elapsed().as_secs_f64();
    println!(
        "\n--- rate sweep (cost-aware bundle, {} parallel probes) ---",
        sweep.len()
    );
    println!(
        "{:>10} {:>10} {:>9} {:>8}",
        "req/s", "goodput", "SLO att.", "stable"
    );
    for (rate, r) in sweep.iter().zip(&reports) {
        assert_eq!(r.completed, requests, "probes run the full horizon");
        println!(
            "{:>10.2} {:>10.2} {:>8.1}% {:>8}",
            rate,
            r.goodput_rps,
            r.slo_attainment * 100.0,
            r.stable(),
        );
        rows.push(bench_row(
            &format!("rate-sweep/{rate}"),
            r,
            sweep_wall / sweep.len() as f64,
        ));
    }

    if let Some(path) = bench_json {
        let doc = format!(
            "{{\n  \"benchmark\": \"policy_sweep\",\n  \"model\": {:?},\n  \
             \"arrival_rate_hz\": 4.0,\n  \"requests\": {requests},\n  \"smoke\": {smoke},\n  \
             \"results\": [\n{}\n  ]\n}}\n",
            model.name,
            rows.join(",\n"),
        );
        std::fs::write(&path, doc).expect("write bench json");
        println!("\nwrote {} sweep rows to {path}", rows.len());
    }
}
