//! Eviction-policy sweep under KV pressure: the PR 3 preemption
//! scenario — GPT-2 XL (512,512) drafts overcommitting one 8 GB IANUS
//! device — replayed under every built-in [`EvictionPolicy`], with an
//! SLO on the interactive tier so the policies can be *scored*, not
//! just observed.
//!
//! ```text
//! cargo run --release --example policy_sweep
//! ```
//!
//! The scenario: a 50/50 mix of interactive and batch-tier (512,512)
//! drafts at 4 req/s (heavy overload — the device sustains ~0.4), max
//! batch 32, 128-token prefill chunks, preemptive admission. Every
//! sequence's KV grows to ~300 MB, so the optimistically admitted batch
//! outgrows device memory and the scheduler must pick victims. Which
//! rule it uses decides who eats the swap dwells:
//!
//! * `lowest-priority-youngest` (default) — tier-targeted: the batch
//!   tier absorbs essentially every eviction, interactive sequences
//!   almost never swap.
//! * `largest-kv` — frees the most memory per *pressure event*, but is
//!   tier-blind (interactive sequences with big contexts swap too) and
//!   its victims re-enter big, so swap-out/swap-in cycles repeat — the
//!   most total swaps, yet the thinnest resident batches.
//! * `least-progress` — loses the least completed work per eviction,
//!   also tier-blind; the fewest total swaps here.
//!
//! All three preserve the liveness contract (every preempted sequence
//! completes; prefilling and lone sequences are never evicted) — that
//! is enforced by the engine, not the policy, and regression-tested in
//! `tests/policy_api.rs`.

use ianus::prelude::*;

/// The PR 3 preemption scenario (`serving_queue`'s closing section),
/// plus a TTFT/ITL SLO on the interactive class.
fn scenario() -> ServingConfig {
    let shape = RequestShape::new(512, 512);
    let slo = Slo::new(
        Duration::from_secs_f64(60.0), // TTFT: queue + chunked prefill
        Duration::from_ms(150),        // ITL p99: decode + swap dwells
    );
    ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 120,
        seed: 0x5EED,
        mix: vec![
            RequestClass::new(shape, 0.5).with_slo(slo),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
    }
}

fn bundle(eviction: &str) -> SchedulerPolicy {
    match eviction {
        "lowest-priority-youngest" => {
            SchedulerPolicy::default().with_eviction(LowestPriorityYoungest)
        }
        "largest-kv" => SchedulerPolicy::default().with_eviction(LargestKv),
        "least-progress" => SchedulerPolicy::default().with_eviction(LeastProgress),
        _ => unreachable!(),
    }
}

fn main() {
    let model = ModelConfig::gpt2_xl();
    println!(
        "eviction-policy sweep: {} (512,512) drafts, 50% interactive (SLO: TTFT 60 s, \
         ITL p99 150 ms) + 50% batch tier,",
        model.name
    );
    println!(
        "one IANUS device, 4 req/s x 120 requests, iteration-level (max batch 32, \
         chunk 128, preempt), FCFS admission, FIFO re-admission\n"
    );
    println!(
        "{:<26} {:>7} {:>11} {:>11} {:>10} {:>10} {:>9} {:>8}",
        "eviction policy",
        "swaps",
        "int:batch",
        "itl p99 ms",
        "itl max s",
        "int p99 s",
        "SLO att.",
        "goodput"
    );

    // One engine for the whole sweep: the policy does not change device
    // costs, so after the first run every probe is queueing-only.
    let mut sim = ServingSim::new(scenario())
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 32,
            prefill_chunk: Some(128),
            preempt: true,
        });

    let mut best: Option<(String, f64)> = None;
    for eviction in ["lowest-priority-youngest", "largest-kv", "least-progress"] {
        sim.set_policy(bundle(eviction));
        let r = sim.run(&model);
        assert_eq!(r.completed, 120, "liveness: every request completes");
        let interactive = &r.per_class[0];
        let batch = &r.per_class[1];
        println!(
            "{:<26} {:>7} {:>5}:{:<5} {:>11.1} {:>10.2} {:>10.0} {:>8.1}% {:>8.2}",
            eviction,
            r.preemptions,
            interactive.preemptions,
            batch.preemptions,
            r.inter_token.p99.as_ms_f64(),
            r.inter_token.max.as_ms_f64() / 1e3,
            interactive.sojourn.p99.as_ms_f64() / 1e3,
            r.slo_attainment * 100.0,
            r.goodput_rps,
        );
        let att = interactive.slo_attainment;
        if best.as_ref().is_none_or(|(_, b)| att > *b) {
            best = Some((eviction.to_string(), att));
        }
    }

    let (winner, att) = best.expect("three policies ran");
    println!(
        "\n{winner} minimizes interactive-tier SLO violations \
         ({:.1}% of interactive requests within SLO).",
        att * 100.0
    );
    println!(
        "The default concentrates evictions on the batch tier (interactive sequences \
         almost never swap),\nleast-progress makes the fewest swaps, and largest-kv \
         swaps the most *sequences* but frees the\nmost memory per swap — thinner \
         resident batches mean faster serialized decode iterations, which\nis what \
         the per-request ITL SLO actually scores. Victim selection is a real policy \
         trade, not a tie."
    );
}
