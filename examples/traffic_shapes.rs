//! Traffic shapes beyond Poisson: the pluggable [`ArrivalSpec`] run
//! head-to-head at **equal mean rate** on one IANUS replica with
//! iteration-level batching. The long-run load is identical in every
//! row — what changes is *when* the requests land — and the report's
//! burst-window metrics make the difference measurable: during an MMPP
//! burst the decode batch fills up, IANUS's PIM decode serializes it,
//! and the burst-window ITL p99 degrades past the steady-state tail
//! while the Poisson control's burst columns stay empty by
//! construction.
//!
//! ```text
//! cargo run --release --example traffic_shapes [-- --smoke] [-- --bench-json PATH]
//! ```
//!
//! Three experiments, all asserted:
//!
//! * **Shape sweep** — Poisson, diurnal (sinusoidal rate modulation),
//!   and MMPP (two-state Markov-modulated bursts) at the same mean
//!   rate. The MMPP row's burst-window ITL p99 must be no better than
//!   its own all-window ITL p99 (bursts are where the tail lives), and
//!   its burst-window SLO attainment must not beat the all-window
//!   attainment.
//! * **Poisson control** — a plain Poisson run has no burst windows:
//!   `burst_inter_token` is exactly [`LatencyPercentiles::ZERO`] and
//!   `burst_slo_attainment` is exactly 1.0 (vacuous).
//! * **Symmetric multi-tenant** — K identical tenants merged at equal
//!   shares. Fairness (max/min per-tenant goodput) is ≥ 1 by
//!   definition and must stay near 1 for symmetric tenants; the
//!   per-tenant completion counts must sum to the run total.

use ianus::prelude::*;

/// An interactive two-class mix carrying an ITL-p99 SLO, so burst
/// pressure shows up in attainment as well as in the latency tail.
fn scenario(requests: u64, rate: f64, spec: ArrivalSpec) -> ServingConfig {
    let slo = Slo::new(Duration::from_ms(500), Duration::from_ms(60));
    ServingConfig {
        arrival_rate_hz: rate,
        requests,
        seed: 0x5EED,
        mix: vec![
            RequestClass::new(RequestShape::new(256, 64), 0.7).with_slo(slo),
            RequestClass::new(RequestShape::new(512, 128), 0.3).with_slo(slo),
        ],
        workflows: vec![],
        arrivals: spec,
    }
}

/// One IANUS replica, iteration-level continuous batching: batched
/// decode serializes on the PIM, which is exactly what lets a burst
/// stretch co-resident token gaps.
fn sim(cfg: ServingConfig) -> ServingSim {
    ServingSim::new(cfg)
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: None,
            preempt: true,
        })
}

/// One result row as a JSON object (no serde in-tree). `wall_s` is
/// machine-dependent; the canonical compare strips it.
#[allow(clippy::too_many_arguments)]
fn bench_row(shape: &str, r: &ServingReport, wall_s: f64) -> String {
    format!(
        "    {{\"shape\": {shape:?}, \"completed\": {}, \"itl_p50_ms\": {:.4}, \
         \"itl_p99_ms\": {:.4}, \"burst_itl_p50_ms\": {:.4}, \"burst_itl_p99_ms\": {:.4}, \
         \"slo_attainment\": {:.6}, \"burst_slo_attainment\": {:.6}, \
         \"tenant_fairness\": {:.6}, \"tenants\": {},\n     \"wall_s\": {wall_s:.6}}}",
        r.completed,
        r.inter_token.p50.as_ms_f64(),
        r.inter_token.p99.as_ms_f64(),
        r.burst_inter_token.p50.as_ms_f64(),
        r.burst_inter_token.p99.as_ms_f64(),
        r.slo_attainment,
        r.burst_slo_attainment,
        r.tenant_fairness,
        r.per_tenant.len(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let bench_json = args
        .iter()
        .position(|a| a == "--bench-json")
        .map(|i| args.get(i + 1).expect("--bench-json needs a PATH").clone());
    let requests = if smoke { 240 } else { 800 };
    // Half of one replica's capacity: the steady state runs with slack
    // (thin batches, short token gaps), so the bursts are what fill
    // the batch and stretch the tail.
    let rate = 2.5;
    let burst_factor = 8.0;
    let model = ModelConfig::gpt2_xl();
    let mut rows = Vec::new();

    // Equal-mean-rate shape sweep. The diurnal amplitude and the MMPP
    // burst factor are chosen so both spend comparable time above the
    // mean; dwell times put several burst/calm cycles inside one run.
    let shapes: Vec<(&str, ArrivalSpec)> = vec![
        ("poisson", ArrivalSpec::Poisson),
        ("diurnal", ArrivalSpec::diurnal(0.75, 160.0 / rate)),
        (
            "mmpp",
            ArrivalSpec::mmpp(burst_factor, 24.0 / rate, 24.0 / rate),
        ),
    ];
    println!(
        "traffic shapes at equal mean rate ({rate} req/s, {requests} requests, {}):\n",
        model.name
    );
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14} {:>8} {:>10}",
        "shape", "ITL p50", "ITL p99", "burst p50", "burst p99", "SLO", "burst SLO"
    );
    let mut reports = Vec::new();
    for (name, spec) in &shapes {
        let t0 = std::time::Instant::now();
        let r = sim(scenario(requests, rate, spec.clone())).run(&model);
        assert_eq!(r.completed, requests, "liveness: every request completes");
        rows.push(bench_row(name, &r, t0.elapsed().as_secs_f64()));
        println!(
            "{:<10} {:>9.2} ms {:>9.2} ms {:>11.2} ms {:>11.2} ms {:>7.1}% {:>9.1}%",
            name,
            r.inter_token.p50.as_ms_f64(),
            r.inter_token.p99.as_ms_f64(),
            r.burst_inter_token.p50.as_ms_f64(),
            r.burst_inter_token.p99.as_ms_f64(),
            r.slo_attainment * 100.0,
            r.burst_slo_attainment * 100.0,
        );
        reports.push(r);
    }

    // Poisson control: no burst windows means exactly-zero burst
    // percentiles and a vacuous (1.0) burst attainment.
    let poisson = &reports[0];
    assert_eq!(
        poisson.burst_inter_token,
        LatencyPercentiles::ZERO,
        "a Poisson run has no burst windows to sample"
    );
    assert_eq!(
        poisson.burst_slo_attainment, 1.0,
        "burst attainment over zero burst completions is vacuously 1.0"
    );

    // MMPP: the burst windows are where the tail lives. The
    // burst-window ITL p99 must be at least the all-window p99, and
    // attainment inside bursts must not beat the overall attainment.
    let mmpp = &reports[2];
    assert!(
        mmpp.inter_token.p99 >= poisson.inter_token.p99
            && mmpp.slo_attainment <= poisson.slo_attainment,
        "equal mean rate, worse tail: bursty arrivals must not beat Poisson on \
         ITL p99 or attainment"
    );
    assert!(
        mmpp.burst_inter_token.p99 >= mmpp.inter_token.p99,
        "MMPP burst-window ITL p99 ({:.2} ms) should be no better than the \
         all-window p99 ({:.2} ms)",
        mmpp.burst_inter_token.p99.as_ms_f64(),
        mmpp.inter_token.p99.as_ms_f64(),
    );
    assert!(
        mmpp.burst_slo_attainment <= mmpp.slo_attainment,
        "attainment inside the bursts should not beat the run's own overall attainment"
    );
    println!(
        "\nmmpp burst windows: ITL p99 {:.2} ms vs {:.2} ms all-window \
         ({:+.1}%), SLO attainment {:.1}% vs {:.1}% Poisson",
        mmpp.burst_inter_token.p99.as_ms_f64(),
        mmpp.inter_token.p99.as_ms_f64(),
        (mmpp.burst_inter_token.p99.as_ms_f64() / mmpp.inter_token.p99.as_ms_f64() - 1.0) * 100.0,
        mmpp.burst_slo_attainment * 100.0,
        poisson.slo_attainment * 100.0,
    );

    // Symmetric multi-tenant run: K identical tenants at equal shares.
    let tenants = 3u32;
    let t0 = std::time::Instant::now();
    let mt = sim(scenario(requests, rate, ArrivalSpec::multi_tenant(tenants))).run(&model);
    assert_eq!(mt.completed, requests, "liveness under multi-tenant merge");
    rows.push(bench_row("multi-tenant", &mt, t0.elapsed().as_secs_f64()));
    println!("\n{tenants} symmetric tenants at equal shares:");
    for t in &mt.per_tenant {
        println!(
            "  tenant {}  completed {:>4}  sojourn p50 {:>8.1} ms  goodput {:>5.2} req/s  \
             SLO {:>5.1}%",
            t.tenant,
            t.completed,
            t.sojourn.p50.as_ms_f64(),
            t.goodput_rps,
            t.slo_attainment * 100.0,
        );
    }
    let total: u64 = mt.per_tenant.iter().map(|t| t.completed).sum();
    assert_eq!(total, requests, "tenant rows partition the completions");
    assert!(
        mt.tenant_fairness >= 1.0 && mt.tenant_fairness.is_finite(),
        "fairness is max/min goodput: >= 1 and finite when every tenant completes"
    );
    assert!(
        mt.tenant_fairness < 2.0,
        "symmetric tenants should stay near parity (got {:.3})",
        mt.tenant_fairness
    );
    println!(
        "  fairness (max/min goodput): {:.3} — symmetric tenants stay near parity",
        mt.tenant_fairness
    );

    if let Some(path) = bench_json {
        let doc = format!(
            "{{\n  \"benchmark\": \"traffic_shapes\",\n  \"model\": {:?},\n  \
             \"requests\": {requests},\n  \"mean_rate_hz\": {rate:.1},\n  \
             \"smoke\": {smoke},\n  \"results\": [\n{}\n  ]\n}}\n",
            model.name,
            rows.join(",\n"),
        );
        std::fs::write(&path, doc).expect("write bench json");
        println!("\nwrote {} shape rows to {path}", rows.len());
    }
}
