//! Copy-on-write prefix sharing under the paged KV allocator: the
//! `shared-prefix` mix (two request classes whose prompts open with the
//! same 384-token system prompt) served by one IANUS device, swept over
//! KV block sizes.
//!
//! ```text
//! cargo run --release --example prefix_cache [-- --smoke]
//! ```
//!
//! (`--smoke` runs a reduced request count for CI.)
//!
//! With `kv_block = 0` (legacy contiguous accounting) every request
//! prefills its full 512-token prompt. With paging enabled, the first
//! request of each class registers its prefix blocks in the class-wide
//! prefix cache; every later request maps the full shared blocks
//! copy-on-write (ref-counted, never written after registration),
//! re-prefills only the partial tail block plus its private suffix, and
//! starts decode sooner. Two effects are visible in the report:
//!
//! * **TTFT splits into two populations** — cache hits skip most of the
//!   prefill compute, so `ttft_cache_hit.p50` sits well below
//!   `ttft_cold.p50` (~4x here at a stable arrival rate).
//! * **Block size trades sharing against fragmentation** — small blocks
//!   round the 384-token prefix down less (more tokens shared, slack
//!   near zero); large blocks waste most of each private tail block
//!   (`fragmentation` grows) and with 256-token blocks only
//!   `384/256 = 1` full block is shareable.
//!
//! The asserts pin both relations plus the liveness contract.

use ianus::prelude::*;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let requests = if smoke { 30 } else { 60 };
    let model = ModelConfig::gpt2_xl();
    println!(
        "prefix-cache sweep: {} (512,512) drafts, 384-token shared class prefix,",
        model.name
    );
    println!(
        "one IANUS device, 0.3 req/s x {requests} requests, iteration-level (max batch 8, \
         chunk 128, preempt)\n"
    );
    println!(
        "{:>8} {:>6} {:>8} {:>10} {:>14} {:>12}",
        "kv block", "hits", "shared", "frag", "ttft hit p50", "cold p50"
    );

    let mut sim = ServingSim::new(ServingConfig::shared_prefix(0.3, requests))
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: Some(128),
            preempt: true,
        });

    let mut frags = Vec::new();
    for kv_block in [0u64, 16, 64, 256] {
        sim.set_kv_block(kv_block);
        let r = sim.run(&model);
        assert_eq!(r.completed, requests, "liveness: every request completes");
        let label = if kv_block == 0 {
            "legacy".to_string()
        } else {
            kv_block.to_string()
        };
        println!(
            "{label:>8} {:>6} {:>7.1}% {:>9.1}% {:>11.1} ms {:>9.1} ms",
            r.prefix_cache_hits,
            r.prefix_share_ratio * 100.0,
            r.fragmentation * 100.0,
            r.ttft_cache_hit.p50.as_ms_f64(),
            r.ttft_cold.p50.as_ms_f64(),
        );
        if kv_block == 0 {
            // Legacy contiguous mode: no cache, every TTFT is cold.
            assert_eq!(r.prefix_cache_hits, 0);
            assert_eq!(r.prefix_share_ratio, 0.0);
        } else {
            // Both classes share the prefix, so all but the first
            // request of each class should hit.
            assert!(
                r.prefix_cache_hits >= requests - 2,
                "kv_block {kv_block}: expected near-universal cache hits, got {}",
                r.prefix_cache_hits
            );
            assert!(
                r.prefix_share_ratio > 0.0,
                "kv_block {kv_block}: some prompt tokens must be shared"
            );
            // The headline: skipping the shared prefill lowers TTFT.
            assert!(
                r.ttft_cache_hit.p50 < r.ttft_cold.p50,
                "kv_block {kv_block}: cache hits must see lower TTFT than cold prefills"
            );
            frags.push(r.fragmentation);
        }
        if kv_block == 64 {
            // 6 of 8 prompt blocks are full shared-prefix blocks.
            assert!(
                r.prefix_share_ratio > 0.5,
                "64-token blocks share 384/512 = 75% of prompt tokens"
            );
        }
    }

    // Fragmentation is monotone in block size: bigger blocks leave more
    // slack in each sequence's private tail.
    assert!(
        frags.windows(2).all(|w| w[0] <= w[1]),
        "fragmentation must grow with block size: {frags:?}"
    );
    println!(
        "\nCache hits map the shared blocks and re-prefill only the private suffix: TTFT p50 \
         drops ~4x.\nSmaller blocks share more of the 384-token prefix and waste less tail \
         slack; 256-token blocks\nshare only one full block and leave most of the last private \
         block empty."
    );
}
