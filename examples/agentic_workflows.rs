//! Agentic workflows on the serving engine (PR 9): requests that are
//! **DAGs**, not independent arrivals. An agent turn is a chain of LLM
//! calls (plan → act → act → summarize), a tool call fans out into
//! parallel sub-requests that a join node consumes, and speculative
//! branches race each other with the first finisher cancelling the
//! loser's subtree. Each node's effective prompt is its own tokens plus
//! every parent's output — which under paged KV accounting
//! (`ServingSim::kv_block`) is exactly the KV the parent already built,
//! so a child can admit *onto the parent's blocks* copy-on-write
//! instead of cold re-prefilling the conversation so far.
//!
//! ```text
//! cargo run --release --example agentic_workflows [-- --smoke] [-- --bench-json PATH]
//! ```
//!
//! Three experiments on IANUS replicas serving GPT-2 XL:
//!
//! 1. **KV inheritance vs cold re-prefill** (agent-chain): the same
//!    chain workload with the engine's workflow-KV inheritance on and
//!    off. Inheritance prefills only each node's *own* prompt tokens —
//!    the inherited context is a prefix-cache hit — so chain TTFT p50
//!    and end-to-end workflow latency both drop. Asserted.
//! 2. **Workflow-aware admission** (tool-fanout): FCFS vs EDF (the
//!    workflow deadline stands in for a per-request SLO) vs
//!    `widest-subtree` (admit the node gating the most downstream
//!    work, oldest instance first). Under backlog, FCFS buries
//!    released tools and joins behind every queued root, so in-flight
//!    instances rot; the workflow-aware policies drain them first and
//!    compress the workflow-latency tail. Asserted: widest-subtree
//!    beats FCFS on p99 workflow latency. (On a *uniform* template,
//!    widest-subtree's width key only breaks within-instance ties, so
//!    it coincides with EDF; it separates on DAGs that expose several
//!    ready nodes of unequal width.)
//! 3. **Speculative cancellation**: racing branches settle every
//!    instance with one loser subtree cancelled — completions plus
//!    cancellations account for every node drawn, nothing leaks.
//!
//! `--smoke --bench-json` emits the deterministic metric rows CI diffs
//! against `benches/canonical/BENCH_workflows.json` (wall-clock lines
//! are stripped by the comparison).

use ianus::prelude::*;
use std::time::Instant;

/// Iteration-level IANUS cluster with paged KV: 2 replicas, batch 8,
/// chunked prefill, preemption on (workflow bursts overcommit).
fn cluster(cfg: ServingConfig) -> ServingSim {
    ServingSim::new(cfg)
        .cluster(2, |_| IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: Some(128),
            preempt: true,
        })
        .kv_block(64)
}

/// One JSON result row (no serde in-tree); `wall_s` is stripped by the
/// canonical diff.
fn bench_row(experiment: &str, variant: &str, r: &ServingReport, wall_s: f64) -> String {
    format!(
        "    {{\"experiment\": {experiment:?}, \"variant\": {variant:?}, \
         \"ttft_p50_ms\": {:.4}, \"workflow_p50_ms\": {:.4}, \"workflow_p99_ms\": {:.4}, \
         \"deadline_attainment\": {:.6}, \"completed\": {}, \"cancelled_nodes\": {}, \
         \"inherited_prefix_ratio\": {:.6},\n     \"wall_s\": {wall_s:.6}}}",
        r.ttft.p50.as_ms_f64(),
        r.workflow_latency.p50.as_ms_f64(),
        r.workflow_latency.p99.as_ms_f64(),
        r.workflow_slo_attainment,
        r.completed,
        r.cancelled_nodes,
        r.inherited_prefix_ratio,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let bench_json = args
        .iter()
        .position(|a| a == "--bench-json")
        .map(|i| args.get(i + 1).expect("--bench-json needs a PATH").clone());
    let instances = if smoke { 40 } else { 120 };
    let model = ModelConfig::gpt2_xl();
    let mut rows: Vec<String> = Vec::new();

    // ----------------------------------------------------------------
    // 1. KV inheritance vs cold re-prefill on the agent chain
    // ----------------------------------------------------------------
    let chain_cfg =
        ServingConfig::workflow_mix(2.0, instances, vec![WorkflowTemplate::agent_chain()]);
    println!(
        "agent-chain ({} instances x {} nodes, {}):\n",
        instances,
        WorkflowTemplate::agent_chain().node_count(),
        model.name
    );
    let mut inherit = None;
    for (variant, on) in [("inherited-kv", true), ("cold-reprefill", false)] {
        let t = Instant::now();
        let r = cluster(chain_cfg.clone())
            .workflow_inheritance(on)
            .run(&model);
        let wall = t.elapsed().as_secs_f64();
        println!(
            "  {variant:<16} TTFT p50 {:>7.0} ms | workflow p50/p99 {:>7.0}/{:>7.0} ms | \
             deadline attain {:>5.1}% | inherited {:>4.1}%",
            r.ttft.p50.as_ms_f64(),
            r.workflow_latency.p50.as_ms_f64(),
            r.workflow_latency.p99.as_ms_f64(),
            r.workflow_slo_attainment * 100.0,
            r.inherited_prefix_ratio * 100.0,
        );
        assert_eq!(r.completed_workflows, instances, "every instance settles");
        assert_eq!(r.cancelled_nodes, 0, "chains cancel nothing");
        rows.push(bench_row("chain-inheritance", variant, &r, wall));
        if on {
            // Not every child admits on its parent's home replica, so
            // the ratio sits below 1.0 — but a healthy fraction of the
            // chain must ride the parent's blocks.
            assert!(r.inherited_prefix_ratio > 0.25, "chain children inherit");
            inherit = Some(r);
        } else {
            let inherit = inherit.as_ref().expect("inherit ran first");
            assert_eq!(r.inherited_prefix_ratio, 0.0, "control is cold");
            assert!(
                inherit.ttft.p50 < r.ttft.p50,
                "inherited KV must beat cold re-prefill on chain TTFT p50 \
                 ({} vs {} ms)",
                inherit.ttft.p50.as_ms_f64(),
                r.ttft.p50.as_ms_f64(),
            );
        }
    }

    // ----------------------------------------------------------------
    // 2. Admission policies on the tool fan-out
    // ----------------------------------------------------------------
    let fanout_cfg =
        ServingConfig::workflow_mix(2.5, instances, vec![WorkflowTemplate::tool_fanout()]);
    println!(
        "\ntool-fanout ({} instances x {} nodes), admission shootout:\n",
        instances,
        WorkflowTemplate::tool_fanout().node_count()
    );
    let policies: [(&str, SchedulerPolicy); 3] = [
        ("fcfs", SchedulerPolicy::default()),
        (
            "edf",
            SchedulerPolicy::default().with_admission(DeadlineAdmission),
        ),
        (
            "widest-subtree",
            SchedulerPolicy::default().with_admission(WidestSubtreeAdmission),
        ),
    ];
    let mut p99 = Vec::new();
    for (name, policy) in policies {
        let t = Instant::now();
        let r = cluster(fanout_cfg.clone()).policy(policy).run(&model);
        let wall = t.elapsed().as_secs_f64();
        println!(
            "  {name:<16} workflow p50/p99 {:>7.0}/{:>7.0} ms | deadline attain {:>5.1}% | \
             TTFT p50 {:>6.0} ms",
            r.workflow_latency.p50.as_ms_f64(),
            r.workflow_latency.p99.as_ms_f64(),
            r.workflow_slo_attainment * 100.0,
            r.ttft.p50.as_ms_f64(),
        );
        assert_eq!(r.completed_workflows, instances);
        p99.push((name, r.workflow_latency.p99));
        rows.push(bench_row("fanout-admission", name, &r, wall));
    }
    let by_name = |n: &str| p99.iter().find(|(p, _)| *p == n).expect("policy ran").1;
    assert!(
        by_name("widest-subtree") < by_name("fcfs"),
        "widest-subtree must beat FCFS on tool-fanout workflow p99 ({} vs {} ms)",
        by_name("widest-subtree").as_ms_f64(),
        by_name("fcfs").as_ms_f64(),
    );

    // ----------------------------------------------------------------
    // 3. Speculative branches: first finisher wins, loser is cancelled
    // ----------------------------------------------------------------
    let spec_tpl = WorkflowTemplate::speculative();
    let nodes = spec_tpl.node_count() as u64;
    let spec_cfg = ServingConfig::workflow_mix(2.5, instances, vec![spec_tpl]);
    let t = Instant::now();
    let r = cluster(spec_cfg).run(&model);
    let wall = t.elapsed().as_secs_f64();
    println!(
        "\nspeculative ({instances} instances x {nodes} nodes): {} completions + {} \
         cancelled nodes,\n  workflow p50/p99 {:>7.0}/{:>7.0} ms | deadline attain {:>5.1}%",
        r.completed,
        r.cancelled_nodes,
        r.workflow_latency.p50.as_ms_f64(),
        r.workflow_latency.p99.as_ms_f64(),
        r.workflow_slo_attainment * 100.0,
    );
    assert_eq!(r.completed_workflows, instances, "every race settles");
    assert_eq!(
        r.completed + r.cancelled_nodes,
        instances * nodes,
        "every node completes or is cancelled — nothing leaks"
    );
    assert!(r.cancelled_nodes > 0, "some branch must lose the race");
    rows.push(bench_row("speculative", "default", &r, wall));

    println!(
        "\ninheritance turns the agent chain's context hand-off into a block-table \
         operation (children\nprefill only their own prompt), and the workflow tail tightens \
         once admission drains in-flight\nDAGs instead of burying their tools and joins \
         behind every queued root."
    );

    if let Some(path) = bench_json {
        let doc = format!(
            "{{\n  \"benchmark\": \"agentic_workflows\",\n  \"model\": {:?},\n  \
             \"instances\": {instances},\n  \"smoke\": {smoke},\n  \"results\": [\n{}\n  ]\n}}\n",
            model.name,
            rows.join(",\n"),
        );
        std::fs::write(&path, doc).expect("write bench json");
        println!("\nwrote {} result rows to {path}", rows.len());
    }
}
