//! Multi-device scaling study (the paper's Section 7): serve GPT 6.7B,
//! 13B and 30B on groups of IANUS devices, report scaling efficiency,
//! tokens/second and perf/TDP against a single A100 — then put the
//! device groups behind the [`ServingSim`] cluster engine and measure the
//! request rate each cluster sustains.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use ianus::prelude::*;
use ianus::system::multi_device::{DeviceGroup, A100_TDP_WATTS, IANUS_TDP_WATTS};

fn main() {
    let gpu = GpuModel::a100_megatron();
    let req = RequestShape::new(256, 64);
    for model in ModelConfig::large_gpt_family() {
        let min_devices = DeviceGroup::devices_for(&model);
        println!(
            "=== {} ({:.1}B params, {:.1} GB BF16) — needs >={} devices ===",
            model.name,
            model.param_count() as f64 / 1e9,
            model.param_bytes() as f64 / 1e9,
            min_devices
        );
        let gpu_ms = gpu.request_latency(&model, req).as_ms_f64();
        println!("single A100 (Megatron model): {gpu_ms:.0} ms for (256,64)\n");
        println!(
            "{:>8} | {:>10} {:>10} {:>10} | {:>9} {:>9}",
            "devices", "ms", "tokens/s", "scaling", "vs A100", "perf/TDP"
        );
        let mut base_tps = None;
        let mut d = min_devices;
        while d <= min_devices * 4 && d <= 16 {
            // The group is driven through the same Backend trait the
            // serving engine uses.
            let mut group = DeviceGroup::new(SystemConfig::ianus(), d);
            if Backend::fits(&group, &model).is_err() {
                d *= 2;
                continue;
            }
            let ms = group.service_time(&model, req).as_ms_f64();
            let tps = req.output as f64 / (ms / 1e3);
            let base = *base_tps.get_or_insert(tps);
            let perf_tdp = (gpu_ms / ms) / (d as f64 * IANUS_TDP_WATTS / A100_TDP_WATTS);
            println!(
                "{:>8} | {:>10.1} {:>10.1} {:>9.2}x | {:>8.1}x {:>8.1}x",
                d,
                ms,
                tps,
                tps / base,
                gpu_ms / ms,
                perf_tdp
            );
            d *= 2;
        }

        // Cluster-scale serving: replicas of the smallest viable group
        // behind least-loaded dispatch. How much traffic does each
        // cluster size sustain?
        print!("sustained (256,64) req/s:");
        let mut last: Option<(ServingSim, f64)> = None;
        for replicas in [1usize, 2, 4] {
            let mut sim = ServingSim::new(ServingConfig {
                arrival_rate_hz: 0.1,
                requests: 200,
                seed: 0x5CA1E,
                mix: vec![RequestClass::new(req, 1.0)],
                workflows: vec![],
                arrivals: Default::default(),
            })
            .cluster(replicas, |_| {
                DeviceGroup::new(SystemConfig::ianus(), min_devices)
            })
            .dispatch(DispatchPolicy::LeastLoaded);
            // The bisection probes run on cloned engines across scoped
            // threads (DeviceGroup is cloneable), so each search costs
            // roughly its longest single probe of wall-clock.
            let rate = sim.sustainable_rate(&model, 0.05, 64.0);
            print!("  {replicas} x {min_devices}-device group: {rate:.1}");
            last = Some((sim, rate));
        }
        println!();

        // Bracket the 4-replica operating point with one parallel
        // sweep: all four probes replay the horizon concurrently and
        // come back in rate order.
        let (mut sim, rate) = last.expect("three cluster sizes ran");
        let grid: Vec<f64> = [0.5, 0.75, 1.0, 1.25].iter().map(|m| m * rate).collect();
        let reports = sim.sweep_rates(&model, &grid);
        print!("4-group rate sweep (req/s: p50 sojourn):");
        for (g, r) in grid.iter().zip(&reports) {
            print!("  {g:.1}: {:.2}s", r.sojourn.p50.as_secs_f64());
        }
        println!("\n");
    }
    println!(
        "TDP assumptions: {IANUS_TDP_WATTS} W per IANUS device, {A100_TDP_WATTS} W per A100.\n\
         Scaling is sublinear because every decoder-block synchronization crosses PCIe."
    );
}
