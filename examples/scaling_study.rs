//! Multi-device scaling study (the paper's Section 7): serve GPT 6.7B,
//! 13B and 30B on groups of IANUS devices, report scaling efficiency,
//! tokens/second and perf/TDP against a single A100.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use ianus::prelude::*;
use ianus::system::multi_device::{DeviceGroup, A100_TDP_WATTS, IANUS_TDP_WATTS};

fn main() {
    let gpu = GpuModel::a100_megatron();
    let req = RequestShape::new(256, 64);
    for model in ModelConfig::large_gpt_family() {
        let min_devices = DeviceGroup::devices_for(&model);
        println!(
            "=== {} ({:.1}B params, {:.1} GB BF16) — needs ≥{} devices ===",
            model.name,
            model.param_count() as f64 / 1e9,
            model.param_bytes() as f64 / 1e9,
            min_devices
        );
        let gpu_ms = gpu.request_latency(&model, req).as_ms_f64();
        println!("single A100 (Megatron model): {gpu_ms:.0} ms for (256,64)\n");
        println!(
            "{:>8} | {:>10} {:>10} {:>10} | {:>9} {:>9}",
            "devices", "ms", "tokens/s", "scaling", "vs A100", "perf/TDP"
        );
        let mut base_tps = None;
        let mut d = min_devices;
        while d <= min_devices * 4 && d <= 16 {
            let mut group = DeviceGroup::new(SystemConfig::ianus(), d);
            if group.fits(&model).is_err() {
                d *= 2;
                continue;
            }
            let r = group.run_request(&model, req);
            let ms = r.total.as_ms_f64();
            let tps = r.tokens_per_second(req.output);
            let base = *base_tps.get_or_insert(tps);
            let perf_tdp =
                (gpu_ms / ms) / (d as f64 * IANUS_TDP_WATTS / A100_TDP_WATTS);
            println!(
                "{:>8} | {:>10.1} {:>10.1} {:>9.2}x | {:>8.1}x {:>8.1}x",
                d,
                ms,
                tps,
                tps / base,
                gpu_ms / ms,
                perf_tdp
            );
            d *= 2;
        }
        println!();
    }
    println!(
        "TDP assumptions: {IANUS_TDP_WATTS} W per IANUS device, {A100_TDP_WATTS} W per A100.\n\
         Scaling is sublinear because every decoder-block synchronization crosses PCIe."
    );
}
