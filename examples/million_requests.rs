//! Million-request cluster trace: the ROADMAP's event-driven-core
//! stress test. 1,000,000 requests arrive at a 128-replica cluster
//! under iteration-level batching, and the engine must chew through
//! them in **seconds of wall-clock** — the point of the heap-scheduled
//! core, where one step costs `O(log replicas)` and the 100+ idle or
//! drained replicas cost nothing at all.
//!
//! ```text
//! cargo run --release --example million_requests [-- --smoke] [-- --bench-json PATH]
//! ```
//!
//! (`--smoke` runs 50,000 requests for CI. The run always records its
//! wall-clock trajectory — requests, replicas, horizon, throughput,
//! wall seconds — as JSON; `--bench-json PATH` picks the output path,
//! default `BENCH_engine.json`. CI archives it so engine-performance
//! regressions show up as per-PR artifact diffs.)
//!
//! The replica model is an analytic NPU-PIM node calibrated to the
//! paper's GPT-2 XL operating point (sub-millisecond batched decode
//! iterations; prefill streaming at hundreds of GB/s effective), so
//! the example measures the *engine*, not a device pipeline: every
//! backend call is a handful of float ops. The cluster is driven at
//! 60% of its analytic full-batch capacity — ~80% measured
//! utilization: loaded, but the queue drains.

use ianus::prelude::*;

/// Analytic NPU-PIM serving node: linear prefill, affine batched
/// decode. Costs are calibrated to the paper's single-device GPT-2 XL
/// numbers (≈ 28 µs per prefill token, ≈ 50 µs + 20 µs/sequence per
/// decode iteration) but evaluate in nanoseconds of host time, which
/// is what a 128-replica × 1M-request trace needs.
#[derive(Debug, Clone, Copy)]
struct PimNode {
    /// Per-prompt-token prefill cost.
    prefill_per_token: Duration,
    /// Fixed cost of one decode iteration (weight streaming, PIM
    /// command issue).
    decode_base: Duration,
    /// Marginal cost per co-batched sequence (attention GEMVs scale
    /// with batch; FC weight traffic does not).
    decode_per_seq: Duration,
}

impl PimNode {
    fn calibrated() -> Self {
        PimNode {
            prefill_per_token: Duration::from_us(28),
            decode_base: Duration::from_us(50),
            decode_per_seq: Duration::from_us(20),
        }
    }

    /// Requests/second one node sustains at steady state with `batch`
    /// resident sequences: a request costs its prompt prefill (one
    /// mixed iteration carries it) plus its share of the decode
    /// iterations — `output` tokens at `batch` tokens retired per
    /// iteration of cost `iter(batch)`.
    fn capacity_rps(&self, shape: RequestShape, batch: u32) -> f64 {
        let iter = self.decode_base + self.decode_per_seq * u64::from(batch);
        let prefill = self.prefill_per_token * shape.input;
        let decode_share = shape.output as f64 * iter.as_secs_f64() / batch as f64;
        1.0 / (decode_share + prefill.as_secs_f64())
    }
}

impl Backend for PimNode {
    fn name(&self) -> &str {
        "analytic PIM node"
    }

    fn service_time(&mut self, _model: &ModelConfig, shape: RequestShape) -> Duration {
        self.prefill_per_token * shape.input
            + (self.decode_base + self.decode_per_seq) * shape.output.saturating_sub(1)
    }

    fn fits(&self, _model: &ModelConfig) -> Result<(), CapacityError> {
        Ok(())
    }

    fn prefill_time(&mut self, _model: &ModelConfig, tokens: u64) -> Duration {
        self.prefill_per_token * tokens.max(1)
    }

    fn decode_time(&mut self, _model: &ModelConfig, _past_tokens: u64, batch: u32) -> Duration {
        self.decode_base + self.decode_per_seq * u64::from(batch.max(1))
    }

    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(*self))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let bench_json = args
        .iter()
        .position(|a| a == "--bench-json")
        .map(|i| args.get(i + 1).expect("--bench-json needs a PATH").clone())
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let requests: u64 = if smoke { 50_000 } else { 1_000_000 };
    let replicas = 128usize;
    let max_batch = 32u32;
    let shape = RequestShape::new(128, 32);
    let node = PimNode::calibrated();

    // Drive the cluster at 60% of its analytic full-batch capacity.
    // Partially-filled batches pay the per-iteration base cost over
    // fewer tokens, so effective capacity sits below the full-batch
    // analytic bound — 60% nominal lands around 80% measured
    // utilization, comfortably stable, with batches forming in
    // arrival bursts.
    let rate = 0.6 * replicas as f64 * node.capacity_rps(shape, max_batch);
    println!(
        "million_requests: {requests} ({},{}) requests over {replicas} analytic PIM \
         replicas at {rate:.0} req/s",
        shape.input, shape.output
    );
    println!("(60% of the cluster's ~{:.0} req/s analytic capacity; iteration-level, max batch {max_batch})\n",
        replicas as f64 * node.capacity_rps(shape, max_batch));

    let mut sim = ServingSim::new(ServingConfig {
        arrival_rate_hz: rate,
        requests,
        seed: 0x1A45,
        mix: vec![RequestClass::new(shape, 1.0)],
        workflows: vec![],
        arrivals: Default::default(),
    })
    .cluster(replicas, |_| node)
    .scheduling(Scheduling::IterationLevel {
        max_batch,
        prefill_chunk: None,
        preempt: false,
    });

    let t0 = std::time::Instant::now();
    let report = sim.run(&ModelConfig::gpt2_xl());
    let wall_s = t0.elapsed().as_secs_f64();

    // Liveness and stability: every request completes, and the cluster
    // keeps up with the offered rate.
    assert_eq!(
        report.completed, requests,
        "liveness: every request completes"
    );
    assert!(!report.diverged);
    assert!(
        report.stable(),
        "60% load must be sustainable (utilization {:.2})",
        report.utilization
    );

    let horizon = requests as f64 / rate;
    println!(
        "completed  : {} requests on {replicas} replicas",
        report.completed
    );
    println!(
        "sim horizon: {horizon:.1} s served at {:.0} req/s",
        report.throughput_rps
    );
    println!(
        "utilization: {:.1}%  peak batch {}",
        report.utilization * 100.0,
        report.peak_batch
    );
    println!(
        "p50 / p99 sojourn: {:.0} ms / {:.0} ms",
        report.sojourn.p50.as_ms_f64(),
        report.sojourn.p99.as_ms_f64()
    );
    println!(
        "wall-clock : {wall_s:.2} s ({:.0} requests simulated per wall-second)",
        requests as f64 / wall_s
    );

    // The event-driven core's contract: the full 1M-request trace
    // finishes in seconds. The bound is deliberately loose (shared CI
    // runners), but a regression to the O(replicas)-per-step scan blows
    // straight through it.
    let bound = if smoke { 20.0 } else { 90.0 };
    assert!(
        wall_s < bound,
        "engine wall-clock regression: {wall_s:.1} s for {requests} requests (bound {bound} s)"
    );

    let doc = format!(
        "{{\n  \"benchmark\": \"million_requests\",\n  \"smoke\": {smoke},\n  \
         \"requests\": {requests},\n  \"replicas\": {replicas},\n  \"max_batch\": {max_batch},\n  \
         \"arrival_rate_hz\": {rate:.3},\n  \"sim_horizon_s\": {horizon:.3},\n  \
         \"throughput_rps\": {:.3},\n  \"utilization\": {:.6},\n  \"peak_batch\": {},\n  \
         \"sojourn_p50_ms\": {:.3},\n  \"sojourn_p99_ms\": {:.3},\n  \
         \"wall_s\": {wall_s:.6},\n  \"requests_per_wall_s\": {:.1}\n}}\n",
        report.throughput_rps,
        report.utilization,
        report.peak_batch,
        report.sojourn.p50.as_ms_f64(),
        report.sojourn.p99.as_ms_f64(),
        requests as f64 / wall_s,
    );
    std::fs::write(&bench_json, doc).expect("write bench json");
    println!("\nwrote engine trajectory to {bench_json}");
}
