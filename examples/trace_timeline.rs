//! Export a PAS execution timeline as Chrome-trace JSON.
//!
//! ```text
//! cargo run --release --example trace_timeline [past_tokens] [out.json]
//! ```
//!
//! Open the produced file in `chrome://tracing` or https://ui.perfetto.dev
//! to *see* PIM Access Scheduling: per-core matrix/vector/DMA lanes, the
//! memory channel-group tokens serializing DMA against PIM, and the
//! Figure 7c overlaps (Kpre prefetch under SV, QKᵀ under value
//! generation).

use ianus::prelude::*;
use ianus::system::trace::trace_stage;

fn main() {
    let mut args = std::env::args().skip(1);
    let past: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let out = args.next().unwrap_or_else(|| "ianus_trace.json".to_owned());

    let cfg = SystemConfig::ianus();
    let model = ModelConfig::gpt2_xl();
    let stage = Stage::Generation { past_tokens: past };
    let result = trace_stage(&cfg, &model, &stage);
    let json = result.to_chrome_trace();
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "traced one {} generation step (past = {past}): {} commands, makespan {}",
        model.name,
        result.spans.len(),
        result.makespan
    );

    // Quick textual view of the first microseconds on core 0 + PIM 0.
    let units = result.units;
    println!("\nfirst events on core0 and pim_group0:");
    let mut shown = 0;
    for s in &result.spans {
        let name = match s.unit {
            u if u == units.mu(0) => "core0.mu",
            u if u == units.vu(0) => "core0.vu",
            u if u == units.dma_in(0) => "core0.dma_in",
            u if u == units.dma_out(0) => "core0.dma_out",
            u if u == units.pim(0) => "pim_group0",
            _ => continue,
        };
        println!(
            "  {:>10.2} us .. {:>10.2} us  {:<13} cmd {}",
            s.start.as_us_f64(),
            s.end.as_us_f64(),
            name,
            s.cmd
        );
        shown += 1;
        if shown >= 18 {
            break;
        }
    }
    println!("\nwrote {out} — open it in chrome://tracing or ui.perfetto.dev");
}
