//! Datacenter text-generation serving study (the paper's motivating
//! workload): sweep typical request shapes for every GPT-2 size, compare
//! platforms through the unified [`Backend`] trait, and report tail
//! behaviour of the serving mix.
//!
//! ```text
//! cargo run --release --example datacenter_serving
//! ```
//!
//! The paper evaluates non-batched requests because datacenters serving
//! interactive NLP traffic cannot wait to form batches; this example
//! models a serving mix of short chat turns, medium completions and long
//! document drafts. Every platform — simulated IANUS/NPU-MEM devices and
//! the analytical A100/DFX baselines — goes through the same
//! `dyn Backend` path.

use ianus::prelude::*;

struct MixEntry {
    name: &'static str,
    request: RequestShape,
    share: f64,
}

fn platforms() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(IanusSystem::new(SystemConfig::ianus())),
        Box::new(IanusSystem::new(SystemConfig::npu_mem())),
        Box::new(GpuModel::a100()),
        Box::new(DfxModel::four_fpga()),
    ]
}

fn main() {
    // A plausible interactive serving mix (shares sum to 1).
    let mix = [
        MixEntry {
            name: "chat turn",
            request: RequestShape::new(128, 32),
            share: 0.5,
        },
        MixEntry {
            name: "completion",
            request: RequestShape::new(256, 128),
            share: 0.35,
        },
        MixEntry {
            name: "draft",
            request: RequestShape::new(512, 512),
            share: 0.15,
        },
    ];

    for model in ModelConfig::gpt2_family() {
        let mut backends = platforms();
        println!("=== {} ===", model.name);
        print!("{:<12} {:>10} |", "request", "(in,out)");
        for b in &backends {
            print!(" {:>16}", b.name());
        }
        println!();
        let mut weighted = vec![0.0f64; backends.len()];
        for e in &mix {
            print!(
                "{:<12} {:>10} |",
                e.name,
                format!("({},{})", e.request.input, e.request.output)
            );
            for (b, w) in backends.iter_mut().zip(weighted.iter_mut()) {
                let ms = b.service_time(&model, e.request).as_ms_f64();
                *w += e.share * ms;
                print!(" {ms:>14.1}ms");
            }
            println!();
        }
        print!("{:<12} {:>10} |", "mix avg", "");
        for w in &weighted {
            print!(" {w:>14.1}ms");
        }
        println!();
        // Resolve platforms by name so reordering `platforms()` cannot
        // silently misattribute the ratios.
        let avg_of = |prefix: &str| {
            backends
                .iter()
                .position(|b| b.name().starts_with(prefix))
                .map(|i| weighted[i])
                .unwrap_or_else(|| panic!("no platform named {prefix}*"))
        };
        println!(
            "serving capacity gain vs A100: {:.1}x; vs DFX: {:.1}x\n",
            avg_of("A100") / avg_of("IANUS"),
            avg_of("DFX") / avg_of("IANUS")
        );
    }

    // The same four platforms as a (deliberately heterogeneous) serving
    // cluster: expected-completion dispatch steers traffic to the fast
    // replicas while the slow ones soak up overflow.
    let model = ModelConfig::gpt2_m();
    let report = ServingSim::new(ServingConfig::interactive(6.0, 400))
        .boxed_replica(Box::new(IanusSystem::new(SystemConfig::ianus())))
        .boxed_replica(Box::new(IanusSystem::new(SystemConfig::npu_mem())))
        .boxed_replica(Box::new(GpuModel::a100()))
        .boxed_replica(Box::new(DfxModel::four_fpga()))
        .dispatch(DispatchPolicy::ShortestExpectedJob)
        .run(&model);
    println!(
        "heterogeneous cluster of all four platforms serving {} at 6 req/s:",
        model.name
    );
    for r in &report.per_replica {
        println!(
            "  {:<16} served {:>4} requests at {:>5.1}% utilization",
            r.name,
            r.completed,
            r.utilization * 100.0
        );
    }
    println!(
        "  cluster p99 sojourn {:.0} ms ({})",
        report.sojourn.p99.as_ms_f64(),
        if report.stable() {
            "stable"
        } else {
            "UNSTABLE"
        }
    );

    // The paper's Section 6.1 argument, made quantitative: per platform,
    // what does iteration-level continuous batching (KV-gated admission,
    // one token per active sequence per iteration) buy over batch-1
    // request-level serving on a decode-heavy mix? The GPU multiplies
    // its sustainable rate several-fold (batched decode amortizes its
    // weight streaming and kernel dispatch). DFX and IANUS decode one
    // sequence at a time, so batching buys them no throughput and even
    // shaves the p99-stable rate (serialized batches stretch tail
    // sojourns) — yet batch-1 IANUS still beats the *batched* A100,
    // which is the paper's design point.
    println!(
        "\nbatch-1 vs continuous batching, decode-heavy mix of {}:",
        model.name
    );
    println!(
        "  {:<16} {:>13} {:>17} {:>6} | {:>9} {:>9}",
        "platform", "request-level", "iteration (b=8)", "gain", "ttft p50", "itl p50"
    );
    type BackendFactory = fn() -> Box<dyn Backend>;
    let factories: Vec<(&str, BackendFactory)> = vec![
        ("IANUS", || {
            Box::new(IanusSystem::new(SystemConfig::ianus()))
        }),
        ("NPU-MEM", || {
            Box::new(IanusSystem::new(SystemConfig::npu_mem()))
        }),
        ("A100 (eager)", || Box::new(GpuModel::a100())),
        ("DFX (4-FPGA)", || Box::new(DfxModel::four_fpga())),
    ];
    for (name, make) in factories {
        let mut req_sim =
            ServingSim::new(ServingConfig::decode_heavy(0.5, 250)).boxed_replica(make());
        let req_rate = req_sim.sustainable_rate(&model, 0.02, 64.0);
        let mut it_sim = ServingSim::new(ServingConfig::decode_heavy(0.5, 250))
            .boxed_replica(make())
            .scheduling(Scheduling::iteration(8));
        let it_rate = it_sim.sustainable_rate(&model, 0.02, 64.0);
        // Tail behaviour at 80% of each mode's own sustainable rate.
        it_sim.set_rate(it_rate * 0.8);
        let at_load = it_sim.run(&model);
        println!(
            "  {:<16} {:>9.2} r/s {:>13.2} r/s {:>5.1}x | {:>6.0} ms {:>6.2} ms",
            name,
            req_rate,
            it_rate,
            it_rate / req_rate.max(1e-9),
            at_load.ttft.p50.as_ms_f64(),
            at_load.inter_token.p50.as_ms_f64(),
        );
    }

    // Chunked prefill, cross-platform: on a long-prompt priority mix at
    // each platform's own 80%-load point, what does chunking the
    // 896-token prefills do to the interactive inter-token p99? The
    // stall a resident decode suffers drops from one *prompt* to one
    // *chunk* on every platform — the effect is architectural, not an
    // IANUS artifact; only the magnitude differs (DFX's token-serial
    // prefill is so slow that both tails saturate).
    println!("\nchunked prefill on the long-prompt mix (25% of prompts are 896 tokens):");
    println!(
        "  {:<16} {:>9} | {:>13} {:>13} {:>7}",
        "platform", "load", "mono itl p99", "chunk itl p99", "gain"
    );
    type BackendFactory2 = fn() -> Box<dyn Backend>;
    let factories: Vec<(&str, BackendFactory2)> = vec![
        ("IANUS", || {
            Box::new(IanusSystem::new(SystemConfig::ianus()))
        }),
        ("NPU-MEM", || {
            Box::new(IanusSystem::new(SystemConfig::npu_mem()))
        }),
        ("A100 (eager)", || Box::new(GpuModel::a100())),
    ];
    for (name, make) in factories {
        let mut probe = ServingSim::new(ServingConfig::long_prompt(1.0, 300)).boxed_replica(make());
        probe.set_scheduling(Scheduling::iteration(4));
        let rate = 0.8 * probe.sustainable_rate(&model, 0.02, 64.0);
        let run = |prefill_chunk| {
            let mut sim =
                ServingSim::new(ServingConfig::long_prompt(rate, 300)).boxed_replica(make());
            sim.set_scheduling(Scheduling::IterationLevel {
                max_batch: 4,
                prefill_chunk,
                preempt: false,
            });
            sim.run(&model)
        };
        let mono = run(None);
        let chunked = run(Some(128));
        println!(
            "  {:<16} {:>5.1} r/s | {:>10.1} ms {:>10.1} ms {:>6.1}x",
            name,
            rate,
            mono.inter_token.p99.as_ms_f64(),
            chunked.inter_token.p99.as_ms_f64(),
            mono.inter_token.p99.as_ns_f64() / chunked.inter_token.p99.as_ns_f64().max(1.0),
        );
    }
}
