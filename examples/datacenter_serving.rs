//! Datacenter text-generation serving study (the paper's motivating
//! workload): sweep typical request shapes for every GPT-2 size, compare
//! platforms, and report tail behaviour of the serving mix.
//!
//! ```text
//! cargo run --release --example datacenter_serving
//! ```
//!
//! The paper evaluates non-batched requests because datacenters serving
//! interactive NLP traffic cannot wait to form batches; this example
//! models a serving mix of short chat turns, medium completions and long
//! document drafts, and reports per-platform service latency.

use ianus::prelude::*;

struct MixEntry {
    name: &'static str,
    request: RequestShape,
    share: f64,
}

fn main() {
    // A plausible interactive serving mix (shares sum to 1).
    let mix = [
        MixEntry { name: "chat turn", request: RequestShape::new(128, 32), share: 0.5 },
        MixEntry { name: "completion", request: RequestShape::new(256, 128), share: 0.35 },
        MixEntry { name: "draft", request: RequestShape::new(512, 512), share: 0.15 },
    ];

    for model in ModelConfig::gpt2_family() {
        println!("=== {} ===", model.name);
        println!(
            "{:<12} {:>10} | {:>10} {:>10} {:>10} {:>10}",
            "request", "(in,out)", "IANUS ms", "NPU-MEM", "A100", "DFX"
        );
        let gpu = GpuModel::a100();
        let dfx = DfxModel::four_fpga();
        let mut weighted = [0.0f64; 4];
        for e in &mix {
            let mut ianus = IanusSystem::new(SystemConfig::ianus());
            let mut npu_mem = IanusSystem::new(SystemConfig::npu_mem());
            let lat = [
                ianus.run_request(&model, e.request).total.as_ms_f64(),
                npu_mem.run_request(&model, e.request).total.as_ms_f64(),
                gpu.request_latency(&model, e.request).as_ms_f64(),
                dfx.request_latency(&model, e.request).as_ms_f64(),
            ];
            for (w, l) in weighted.iter_mut().zip(lat) {
                *w += e.share * l;
            }
            println!(
                "{:<12} {:>10} | {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                e.name,
                format!("({},{})", e.request.input, e.request.output),
                lat[0],
                lat[1],
                lat[2],
                lat[3]
            );
        }
        println!(
            "{:<12} {:>10} | {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            "mix avg", "", weighted[0], weighted[1], weighted[2], weighted[3]
        );
        println!(
            "serving capacity gain vs A100: {:.1}x; vs DFX: {:.1}x\n",
            weighted[2] / weighted[0],
            weighted[3] / weighted[0]
        );
    }
}
