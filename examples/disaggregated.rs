//! Disaggregated prefill/decode serving at **equal hardware cost**: the
//! paper's per-backend claim — PIM-class devices win token-serial
//! decode, GPUs win compute-dense prefill — turned into a *cluster
//! architecture* and priced. A100 `PrefillOnly` replicas absorb the
//! long prompts, IANUS `DecodeOnly` replicas stream the tokens, and
//! each sequence's KV migrates between them over the two-channel DMA
//! queue at prefill completion (`Backend::kv_transfer_time` prices both
//! legs).
//!
//! ```text
//! cargo run --release --example disaggregated [-- --smoke] [-- --bench-json PATH]
//! ```
//!
//! The workload: 896-token prompts, 128 generated tokens, with an ITL
//! p99 SLO of 50 ms and a TTFT SLO swept from relaxed to tight. The
//! contenders, all within a ~220-cost-unit hardware budget
//! ([`device_cost_units`]: HBM GiB + bandwidth premium — an A100 ≈
//! 102.8 units, an IANUS device ≈ 10.9):
//!
//! * **IANUS-only ×20** (≈219 units) — the homogeneous PIM pool.
//! * **A100-only ×2** (≈206 units) — the homogeneous GPU pool.
//! * **Disaggregated 1 A100 + {6,10,14} IANUS** — GPU:PIM ratio sweep
//!   (the 1+10 split is what `DisaggregationConfig::equal_cost` picks
//!   at a 50/50 budget share).
//!
//! The crossover is the TTFT SLO:
//!
//! * **Relaxed (250 ms)** — the homogeneous PIM pool wins: IANUS
//!   prefills GPT-2 XL's 896-token prompt in ~113 ms, well inside the
//!   budget, and per cost unit IANUS beats the A100 at *both* stages
//!   (~3.7× on prefill, ~7× on decode), so twenty cheap devices out-
//!   serve any split that swaps nine of them for one A100.
//! * **Tight (100 ms)** — only disaggregation survives. No IANUS
//!   replica can ever prefill 896 tokens inside 100 ms, so the
//!   homogeneous PIM pool's attainment is zero *at any rate*; the
//!   homogeneous GPU pool meets TTFT but mixes prefills into its decode
//!   batches, stretching co-resident token gaps past the ITL SLO (one
//!   44 ms prefill + one ~30 ms decode share per mixed iteration), and
//!   collapses below 0.5 req/s. The disaggregated cluster prefills on
//!   the A100 inside the budget and decodes on IANUS replicas that
//!   *never* see a prefill — the lone migration dwell lands in a single
//!   inter-token gap, which a per-request ITL **p99** tolerates.
//!
//! The directional assert at the bottom pins that result: at the tight
//! TTFT SLO the best GPU-prefill/PIM-decode split beats the best
//! homogeneous pool on sustainable goodput (the bisected highest rate
//! with ≥90% SLO attainment and a stable backlog).
//!
//! [`device_cost_units`]: ianus::system::capacity::device_cost_units

use ianus::prelude::*;

/// 896-token prompts, 128 output tokens, one class carrying the SLO.
fn scenario(requests: u64, ttft: Duration) -> ServingConfig {
    let slo = Slo::new(ttft, Duration::from_ms(50));
    ServingConfig {
        arrival_rate_hz: 8.0, // bisection overrides per probe
        requests,
        seed: 0x5EED,
        mix: vec![RequestClass::new(RequestShape::new(896, 128), 1.0).with_slo(slo)],
        workflows: vec![],
        arrivals: Default::default(),
    }
}

/// Whole prompts per iteration: chunking only helps when prefill must
/// interleave with decode, which is exactly what disaggregation removes
/// — and the A100's dispatch-bound prefill would pay per chunk.
fn sched() -> Scheduling {
    Scheduling::IterationLevel {
        max_batch: 8,
        prefill_chunk: None,
        preempt: true,
    }
}

/// One contender: a name, its realized hardware cost, and a builder so
/// each SLO point gets a fresh engine (service memos stay warm inside
/// one engine across the bisection's probes).
struct Cluster {
    name: String,
    cost: f64,
    build: Box<dyn Fn(ServingConfig) -> ServingSim>,
}

fn contenders(smoke: bool) -> Vec<Cluster> {
    let a100_cost = GpuModel::a100().cost_units();
    let ianus_cost = SystemConfig::ianus().cost_units();
    let mut v = vec![
        Cluster {
            name: "IANUS-only x20".into(),
            cost: 20.0 * ianus_cost,
            build: Box::new(|cfg| {
                ServingSim::new(cfg)
                    .cluster(20, |_| IanusSystem::new(SystemConfig::ianus()))
                    .scheduling(sched())
                    .overlap_dma(true)
            }),
        },
        Cluster {
            name: "A100-only x2".into(),
            cost: 2.0 * a100_cost,
            build: Box::new(|cfg| {
                ServingSim::new(cfg)
                    .cluster(2, |_| GpuModel::a100())
                    .scheduling(sched())
                    .overlap_dma(true)
            }),
        },
    ];
    let ratios: &[usize] = if smoke { &[10] } else { &[6, 10, 14] };
    for &d in ratios {
        v.push(Cluster {
            name: format!("disagg 1 A100 + {d} IANUS"),
            cost: DisaggregationConfig::by_count(1, d).cost_units(a100_cost, ianus_cost),
            build: Box::new(move |cfg| {
                ServingSim::new(cfg)
                    .disaggregated(
                        DisaggregationConfig::by_count(1, d),
                        |_| GpuModel::a100(),
                        |_| IanusSystem::new(SystemConfig::ianus()),
                    )
                    .scheduling(sched())
                    .overlap_dma(true)
            }),
        });
    }
    v
}

/// One sweep row as a JSON object (no serde in-tree). `wall_s` is
/// machine-dependent; the canonical compare strips it.
fn bench_row(cluster: &str, ttft_ms: f64, cost: f64, goodput: f64, wall_s: f64) -> String {
    format!(
        "    {{\"cluster\": {cluster:?}, \"ttft_slo_ms\": {ttft_ms:.0}, \
         \"cost_units\": {cost:.1}, \"sustainable_goodput_rps\": {goodput:.4},\n     \
         \"wall_s\": {wall_s:.6}}}"
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let bench_json = args
        .iter()
        .position(|a| a == "--bench-json")
        .map(|i| args.get(i + 1).expect("--bench-json needs a PATH").clone());
    let requests = if smoke { 120 } else { 400 };
    let hi_rate = if smoke { 28.0 } else { 40.0 };
    let model = ModelConfig::gpt2_xl();

    // The per-stage economics that make the crossover.
    let mut a100 = GpuModel::a100();
    let mut ianus = IanusSystem::new(SystemConfig::ianus());
    let prompt = 896u64;
    println!(
        "per-device economics, {} ({prompt}-token prompts):",
        model.name
    );
    for (name, prefill_ms, decode_ms, cost) in [
        (
            "A100",
            Backend::prefill_time(&mut a100, &model, prompt).as_ms_f64(),
            Backend::decode_time(&mut a100, &model, 1024, 8).as_ms_f64(),
            a100.cost_units(),
        ),
        (
            "IANUS",
            Backend::prefill_time(&mut ianus, &model, prompt).as_ms_f64(),
            Backend::decode_time(&mut ianus, &model, 1024, 8).as_ms_f64(),
            SystemConfig::ianus().cost_units(),
        ),
    ] {
        println!(
            "  {name:<6} prefill({prompt}) {prefill_ms:>6.1} ms   decode iter (batch 8) \
             {decode_ms:>5.1} ms   cost {cost:>6.1} units"
        );
    }
    println!(
        "\nsustainable goodput (req/s at >=90% SLO attainment), ITL p99 SLO 50 ms, \
         {requests} requests:\n"
    );

    // The `equal_cost` sizing at a 50/50 share of the ~220-unit budget
    // lands on the 1+10 split the ratio sweep probes explicitly.
    let equal = DisaggregationConfig::equal_cost(
        220.0,
        GpuModel::a100().cost_units(),
        SystemConfig::ianus().cost_units(),
        0.5,
    );
    assert_eq!((equal.prefill, equal.decode), (1, 10));

    let ttfts = [250u64, 100];
    println!(
        "{:<26} {:>6} {:>16} {:>16}",
        "cluster (cost units)", "", "TTFT 250 ms", "TTFT 100 ms"
    );
    let mut rows = Vec::new();
    // goodput[slo_idx][cluster_idx]
    let mut goodput = [Vec::new(), Vec::new()];
    let clusters = contenders(smoke);
    for c in &clusters {
        let mut cells = Vec::new();
        for (si, &ttft_ms) in ttfts.iter().enumerate() {
            let cfg = scenario(requests, Duration::from_ms(ttft_ms));
            let mut sim = (c.build)(cfg);
            let t0 = std::time::Instant::now();
            let g = sim.sustainable_goodput_rate(&model, 0.25, hi_rate, 0.9);
            rows.push(bench_row(
                &c.name,
                ttft_ms as f64,
                c.cost,
                g,
                t0.elapsed().as_secs_f64(),
            ));
            goodput[si].push(g);
            cells.push(g);
        }
        println!(
            "{:<26} {:>6.1} {:>16.2} {:>16.2}",
            c.name, c.cost, cells[0], cells[1]
        );
    }

    // Migration accounting at a fixed mid rate on the 1+10 split: every
    // multi-token request prefills on the A100 and migrates exactly once.
    let disagg_idx = 2; // first disagg entry in `contenders`
    let mut cfg = scenario(requests, Duration::from_ms(100));
    cfg.arrival_rate_hz = if smoke { 6.0 } else { 10.0 };
    let mut sim = (clusters[disagg_idx].build)(cfg);
    let r = sim.run(&model);
    assert_eq!(r.completed, requests, "liveness: every request completes");
    assert_eq!(
        r.migrations, requests,
        "every request hands off after prefill"
    );
    println!(
        "\nmigration path ({}, {} req/s): {} migrations, {:.2} s migration stall, \
         {:.2} s KV DMA",
        clusters[disagg_idx].name,
        sim.config().arrival_rate_hz,
        r.migrations,
        r.migration_stall.as_secs_f64(),
        r.kv_dma.as_secs_f64(),
    );
    for p in &r.per_replica {
        println!(
            "  {:<14} role {:<8} completed {:>4}  migrations in/out {:>4}/{:>4}  \
             util {:>5.1}%",
            p.name,
            p.role.name(),
            p.completed,
            p.migrations_in,
            p.migrations_out,
            p.utilization * 100.0,
        );
    }

    // The crossover, pinned directionally. Relaxed TTFT: the homogeneous
    // PIM pool's per-cost dominance wins. Tight TTFT: only the
    // GPU-prefill/PIM-decode split clears prefill latency *and* keeps
    // decode gaps clean — it beats the best homogeneous pool outright.
    let best_disagg = |si: usize| -> f64 { goodput[si][2..].iter().cloned().fold(0.0, f64::max) };
    let best_homo = |si: usize| -> f64 { goodput[si][0].max(goodput[si][1]) };
    assert!(
        best_homo(0) > best_disagg(0),
        "relaxed TTFT: the homogeneous PIM pool should win on raw per-cost capacity"
    );
    assert!(
        best_disagg(1) > best_homo(1),
        "tight TTFT: equal-cost disaggregation must beat the best homogeneous pool \
         ({:.2} vs {:.2} req/s)",
        best_disagg(1),
        best_homo(1),
    );
    println!(
        "\ncrossover: relaxed TTFT favors the homogeneous PIM pool ({:.2} vs {:.2} req/s); \
         at TTFT 100 ms\nonly disaggregation survives ({:.2} vs {:.2} req/s) — GPU prefill \
         meets the latency floor the\nPIM pool cannot, and role separation keeps PIM decode \
         gaps inside the ITL SLO.",
        best_homo(0),
        best_disagg(0),
        best_disagg(1),
        best_homo(1),
    );

    if let Some(path) = bench_json {
        let doc = format!(
            "{{\n  \"benchmark\": \"disaggregated\",\n  \"model\": {:?},\n  \
             \"requests\": {requests},\n  \"smoke\": {smoke},\n  \"results\": [\n{}\n  ]\n}}\n",
            model.name,
            rows.join(",\n"),
        );
        std::fs::write(&path, doc).expect("write bench json");
        println!("\nwrote {} sweep rows to {path}", rows.len());
    }
}
