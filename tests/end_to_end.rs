//! Cross-crate integration tests: the paper's headline claims, asserted
//! end-to-end through the public `ianus` facade.

use ianus::prelude::*;

fn ianus_latency(model: &ModelConfig, req: RequestShape) -> f64 {
    IanusSystem::new(SystemConfig::ianus())
        .run_request(model, req)
        .total
        .as_ms_f64()
}

#[test]
fn headline_speedup_over_gpu() {
    // Paper: 6.2x average over the A100 for GPT-2 (we assert a band that
    // the reproduction must stay within: clearly >3x, below 25x).
    let gpu = GpuModel::a100();
    for model in ModelConfig::gpt2_family() {
        let req = RequestShape::new(128, 64);
        let g = gpu.request_latency(&model, req).as_ms_f64();
        let i = ianus_latency(&model, req);
        let speedup = g / i;
        assert!(
            speedup > 3.0 && speedup < 25.0,
            "{}: speedup {speedup}",
            model.name
        );
    }
}

#[test]
fn headline_speedup_over_dfx() {
    // Paper: 3.2x average over DFX on GPT-2 XL.
    let dfx = DfxModel::four_fpga();
    let model = ModelConfig::gpt2_xl();
    let mut ratios = Vec::new();
    for (i, o) in [(32u64, 16u64), (64, 256), (128, 16)] {
        let req = RequestShape::new(i, o);
        let d = dfx.request_latency(&model, req).as_ms_f64();
        let s = ianus_latency(&model, req);
        ratios.push(d / s);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg > 2.0 && avg < 8.0, "avg speedup vs DFX {avg}");
}

#[test]
fn npu_mem_slower_than_ianus_in_generation_only() {
    // PIM acts as plain GDDR6 during summarization, so the two systems
    // should split only on the generation side.
    let model = ModelConfig::gpt2_l();
    let req = RequestShape::new(256, 64);
    let i = IanusSystem::new(SystemConfig::ianus()).run_request(&model, req);
    let n = IanusSystem::new(SystemConfig::npu_mem()).run_request(&model, req);
    let summ_ratio = n.summarization.as_ns_f64() / i.summarization.as_ns_f64();
    let gen_ratio = n.generation.as_ns_f64() / i.generation.as_ns_f64();
    assert!(summ_ratio < 1.5, "summarization ratio {summ_ratio}");
    assert!(gen_ratio > 3.0, "generation ratio {gen_ratio}");
}

#[test]
fn unified_beats_partitioned() {
    // Paper Figure 13: 1.4-1.6x for M/L/XL, more for 2.5B.
    for (model, min_gain) in [
        (ModelConfig::gpt2_l(), 1.2),
        (ModelConfig::gpt2_2_5b(), 1.8),
    ] {
        let req = RequestShape::new(256, 64);
        let u = ianus_latency(&model, req);
        let p = IanusSystem::new(SystemConfig::partitioned())
            .run_request(&model, req)
            .total
            .as_ms_f64();
        assert!(
            p / u > min_gain,
            "{}: unified gain {} (expected > {min_gain})",
            model.name,
            p / u
        );
    }
}

#[test]
fn pas_scheduling_beats_naive() {
    let model = ModelConfig::gpt2_xl();
    let req = RequestShape::new(128, 64);
    let naive_cfg = SystemConfig::ianus().with_pas(PasPolicy {
        fc: FcMapping::Adaptive,
        attention: AttnMapping::MatrixUnit,
        schedule: Schedule::Naive,
    });
    let naive = IanusSystem::new(naive_cfg)
        .run_request(&model, req)
        .total
        .as_ms_f64();
    let scheduled = ianus_latency(&model, req);
    let gain = naive / scheduled;
    assert!(gain > 1.05 && gain < 2.5, "scheduling gain {gain}");
}

#[test]
fn attention_on_mu_beats_pim_for_64_head_dim() {
    // Paper: QKT/SV on the matrix unit wins except for GPT-2 2.5B.
    let model = ModelConfig::gpt2_xl();
    let req = RequestShape::new(128, 64);
    let pim_cfg = SystemConfig::ianus().with_pas(PasPolicy {
        fc: FcMapping::Adaptive,
        attention: AttnMapping::Pim,
        schedule: Schedule::Overlapped,
    });
    let on_pim = IanusSystem::new(pim_cfg)
        .run_request(&model, req)
        .total
        .as_ms_f64();
    let on_mu = ianus_latency(&model, req);
    assert!(on_mu <= on_pim * 1.02, "MU {on_mu} vs PIM {on_pim}");
}

#[test]
fn generation_is_memory_bound_on_npu_mem() {
    // NPU-MEM per-token time tracks FC weight bytes / 256 GB/s.
    let model = ModelConfig::gpt2_xl();
    let req = RequestShape::new(64, 16);
    let n = IanusSystem::new(SystemConfig::npu_mem()).run_request(&model, req);
    let per_token = n.per_token_latency().unwrap().as_ms_f64();
    let weight_stream_ms = (model.fc_param_count() * 2) as f64 / 256e9 * 1e3;
    assert!(
        per_token > weight_stream_ms && per_token < 2.0 * weight_stream_ms,
        "per-token {per_token} vs stream floor {weight_stream_ms}"
    );
}

#[test]
fn multi_device_strong_scaling_band() {
    // Paper Figure 18: 4x devices => ~2.5x throughput.
    let model = ModelConfig::gpt_6_7b();
    let req = RequestShape::new(256, 64);
    let t2 = DeviceGroup::new(SystemConfig::ianus(), 2).tokens_per_second(&model, req);
    let t8 = DeviceGroup::new(SystemConfig::ianus(), 8).tokens_per_second(&model, req);
    let scaling = t8 / t2;
    assert!(scaling > 1.8 && scaling < 3.5, "scaling {scaling}");
}

#[test]
fn energy_improvement_band() {
    // Paper Figure 11: 3.6-4.4x energy-efficiency improvement.
    let model = ModelConfig::gpt2_l();
    let req = RequestShape::new(128, 64);
    let i = IanusSystem::new(SystemConfig::ianus()).run_request(&model, req);
    let n = IanusSystem::new(SystemConfig::npu_mem()).run_request(&model, req);
    let gain = n.energy.total_pj() / i.energy.total_pj();
    assert!(gain > 2.0 && gain < 7.0, "energy gain {gain}");
}

#[test]
fn bert_never_touches_pim() {
    let model = ModelConfig::bert_l();
    let req = RequestShape::new(256, 1);
    let r = IanusSystem::new(SystemConfig::ianus()).run_request(&model, req);
    assert_eq!(r.energy.pim_pj, 0.0, "BERT must not use PIM compute");
    assert_eq!(r.generation_steps, 0);
}

#[test]
fn facade_reexports_are_usable() {
    // Substrates are reachable through the facade for power users.
    let org = ianus::dram::GddrOrganization::ianus_default();
    assert_eq!(org.channels, 8);
    let cfg = ianus::pim::PimConfig::ianus_default();
    assert_eq!(cfg.total_pus(), 128);
    let npu = ianus::npu::NpuConfig::ianus_default();
    assert_eq!(npu.cores, 4);
}
