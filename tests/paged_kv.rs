//! Paged KV allocator regression net: allocator invariants under
//! arbitrary operation sequences (proptest), the refcount panics that
//! pin down use-after-free, **bit-identity of `kv_block(0)` with the
//! legacy contiguous engine**, and pinned end-to-end behavior of the
//! copy-on-write prefix cache (share ratio, hit-vs-cold TTFT, liveness
//! under preemption, determinism).

use ianus::prelude::*;
use ianus::system::serving::kv::BlockId;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Allocator invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Block conservation: any interleaving of allocate / retain /
    /// release keeps `free + used == total` (no overcommit on this
    /// path), refcounts non-negative, and ends with everything freed.
    #[test]
    fn allocator_conserves_blocks(
        total in 1u64..64,
        block_tokens in prop::sample::select(vec![1u64, 16, 64]),
        ops in prop::collection::vec(0u8..3, 0..200),
    ) {
        let mut alloc = BlockAllocator::new(total, block_tokens);
        let mut live: Vec<BlockId> = Vec::new();
        for op in ops {
            match op {
                // allocate if possible
                0 => {
                    if let Some(b) = alloc.allocate() {
                        prop_assert_eq!(alloc.ref_count(b), 1);
                        live.push(b);
                    } else {
                        prop_assert_eq!(alloc.free_blocks(), 0);
                    }
                }
                // retain a live block (one more handle on it)
                1 => {
                    if let Some(&b) = live.last() {
                        alloc.retain(b);
                        live.push(b);
                    }
                }
                // release a handle
                _ => {
                    if let Some(b) = live.pop() {
                        let freed = alloc.release(b);
                        prop_assert_eq!(freed, alloc.ref_count(b) == 0);
                    }
                }
            }
            prop_assert_eq!(alloc.free_blocks() + alloc.used_blocks(), total);
        }
        for b in live.drain(..) {
            alloc.release(b);
        }
        prop_assert_eq!(alloc.free_blocks(), total);
        prop_assert_eq!(alloc.used_blocks(), 0);
    }

    /// A block table round-trip returns every block: grow to an
    /// arbitrary length (overcommit allowed), optionally share a
    /// prefix through the cache, evict (truncate) and complete — the
    /// allocator must end exactly where it started after the cache is
    /// flushed.
    #[test]
    fn table_roundtrip_leaks_nothing(
        total in 4u64..32,
        block_tokens in prop::sample::select(vec![16u64, 64, 256]),
        grow_tokens in 1u64..4096,
        prefix_blocks in 0usize..4,
    ) {
        let mut alloc = BlockAllocator::new(total, block_tokens);
        let mut cache = PrefixCache::new();
        let mut table = BlockTable::new();
        table.grow_to(&mut alloc, grow_tokens);
        prop_assert_eq!(table.tokens(), grow_tokens);

        // Register the leading full blocks as a shared prefix.
        let shareable = (grow_tokens / block_tokens) as usize;
        let share = prefix_blocks.min(shareable);
        if share > 0 {
            let blocks: Vec<BlockId> = table.blocks()[..share].to_vec();
            cache.insert(&mut alloc, 42, &blocks, share as u64 * block_tokens);
            table.mark_shared(share);
            for &b in &blocks {
                prop_assert_eq!(alloc.ref_count(b), 2); // seq + cache
            }
        }

        // Eviction never frees a shared block.
        table.truncate_to_shared(&mut alloc);
        prop_assert_eq!(table.blocks().len(), share);
        for &b in table.blocks() {
            prop_assert!(alloc.ref_count(b) >= 1);
        }

        table.release_all(&mut alloc);
        cache.flush(&mut alloc);
        prop_assert_eq!(alloc.used_blocks(), 0);
    }

    /// Cache reclaim honors references: entries mapped by a live
    /// sequence survive any reclaim demand; idle entries are freed.
    #[test]
    fn reclaim_never_frees_mapped_blocks(need in 0u64..64) {
        let block_tokens = 16u64;
        let mut alloc = BlockAllocator::new(16, block_tokens);
        let mut cache = PrefixCache::new();

        // Entry A: registered then mapped by a live sequence.
        let mut seq_a = BlockTable::new();
        seq_a.grow_to(&mut alloc, 2 * block_tokens);
        let a_blocks: Vec<BlockId> = seq_a.blocks().to_vec();
        cache.insert(&mut alloc, 1, &a_blocks, 2 * block_tokens);
        seq_a.mark_shared(2);

        // Entry B: registered by a sequence that has since completed —
        // only the cache holds it (idle).
        let mut seq_b = BlockTable::new();
        seq_b.grow_to(&mut alloc, 2 * block_tokens);
        let b_blocks: Vec<BlockId> = seq_b.blocks().to_vec();
        cache.insert(&mut alloc, 2, &b_blocks, 2 * block_tokens);
        seq_b.mark_shared(2);
        seq_b.release_all(&mut alloc);

        let free_before = alloc.free_blocks();
        cache.reclaim(&mut alloc, need);
        // A's blocks are still allocated and still cached.
        for &b in &a_blocks {
            prop_assert!(alloc.ref_count(b) >= 2);
        }
        prop_assert!(cache.lookup(&alloc, 1, u64::MAX).is_some());
        // B was idle, so an unmet demand reclaims it.
        if need > free_before {
            prop_assert!(cache.lookup(&alloc, 2, u64::MAX).is_none());
        }
        seq_a.release_all(&mut alloc);
        cache.flush(&mut alloc);
        prop_assert_eq!(alloc.used_blocks(), 0);
    }
}

#[test]
#[should_panic(expected = "double free")]
fn double_free_panics() {
    let mut alloc = BlockAllocator::new(4, 16);
    let b = alloc.allocate().unwrap();
    alloc.release(b);
    alloc.release(b);
}

#[test]
#[should_panic(expected = "retain of free")]
fn retain_of_free_block_panics() {
    let mut alloc = BlockAllocator::new(4, 16);
    let b = alloc.allocate().unwrap();
    alloc.release(b);
    alloc.retain(b);
}

// ---------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------

fn paged_sim(rate: f64, requests: u64, max_batch: u32, kv_block: u64) -> ServingSim {
    ServingSim::new(ServingConfig::shared_prefix(rate, requests))
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch,
            prefill_chunk: Some(128),
            preempt: true,
        })
        .kv_block(kv_block)
}

/// `kv_block(0)` is not "paged with huge blocks" — it is the legacy
/// contiguous engine, whole-report bit-identical to a sim that never
/// mentions paging.
#[test]
fn kv_block_zero_is_bit_identical_to_legacy() {
    let model = ModelConfig::gpt2_xl();
    let legacy = ServingSim::new(ServingConfig::shared_prefix(4.0, 60))
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 32,
            prefill_chunk: Some(128),
            preempt: true,
        })
        .run(&model);
    let gated = paged_sim(4.0, 60, 32, 0).run(&model);
    assert_eq!(legacy, gated);
    assert_eq!(legacy.prefix_cache_hits, 0);
    assert_eq!(legacy.prefix_share_ratio, 0.0);
}

/// The PR 5 preemption pin survives the rewiring: the shared-prefix mix
/// has the same shapes as the historical custom mix, so in legacy mode
/// the pinned scenario still preempts exactly 166 times.
#[test]
fn legacy_preemption_pin_holds() {
    let r = paged_sim(4.0, 120, 32, 0).run(&ModelConfig::gpt2_xl());
    assert_eq!(r.completed, 120);
    assert_eq!(r.preemptions, 166, "PR 5 pinned preemption count");
}

/// The headline scenario at a stable rate: near-universal cache hits,
/// most prompt tokens shared, and cache-hit TTFT well under cold TTFT.
#[test]
fn prefix_cache_lowers_ttft() {
    let r = paged_sim(0.3, 60, 8, 64).run(&ModelConfig::gpt2_xl());
    assert_eq!(r.completed, 60);
    // One cold request per class (two classes), everyone else hits.
    assert_eq!(r.prefix_cache_hits, 58);
    assert!(
        r.prefix_share_ratio > 0.5,
        "384 of 512 prompt tokens shareable, got {}",
        r.prefix_share_ratio
    );
    assert!(
        r.ttft_cache_hit.p50 < r.ttft_cold.p50,
        "hit p50 {} must beat cold p50 {}",
        r.ttft_cache_hit.p50,
        r.ttft_cold.p50
    );
    assert!(r.fragmentation > 0.0 && r.fragmentation < 0.5);
}

/// Overload liveness: paged accounting keeps the preemption machinery
/// working — sequences are evicted (moving only unshared blocks) and
/// every request still completes.
#[test]
fn paged_preemption_liveness() {
    let r = paged_sim(8.0, 200, 48, 64).run(&ModelConfig::gpt2_xl());
    assert_eq!(r.completed, 200);
    // The full pinned schedule: 351 preemptions, all swaps (no
    // recompute fallback in this scenario). Any engine change that
    // moves this number is reordering the paged preemption schedule —
    // the event-driven-core refactor reproduced it bit-for-bit, and
    // the differential suite in `tests/event_core.rs` holds both cores
    // to whole-report equality.
    assert_eq!(r.preemptions, 351, "pinned paged preemption schedule");
    assert_eq!(r.recomputes, 0);
    assert!(r.prefix_share_ratio > 0.5);
}

/// Paged runs are deterministic: same seed, same report.
#[test]
fn paged_runs_are_deterministic() {
    let model = ModelConfig::gpt2_xl();
    let a = paged_sim(0.3, 40, 8, 64).run(&model);
    let b = paged_sim(0.3, 40, 8, 64).run(&model);
    assert_eq!(a, b);
}
