//! Two-channel DMA semantics: lane discipline at the unit level
//! (`serving::dma`) and its report-level consequences on the swap
//! path.
//!
//! The channel pair models a full-duplex host link: one H2D lane
//! (swap-ins, inbound migrations) and one D2H lane (swap-outs,
//! outbound migration legs). "Swap-in priority" is structural — H2D
//! traffic never queues behind D2H writebacks — and within a lane
//! transfers never reorder. Unsplit channels collapse to the single
//! shared clock every pre-PR 8 report was pinned against.

use ianus::prelude::*;
use ianus::system::serving::dma::{DmaChannels, DmaLane};

// ---------------------------------------------------------------------
// Lane discipline (unit level, public API)
// ---------------------------------------------------------------------

/// Swap-in priority: with split lanes, an H2D transfer issued while
/// the D2H lane is saturated starts immediately.
#[test]
fn swap_in_priority_h2d_never_queues_behind_d2h() {
    let mut ch = DmaChannels::new(true);
    assert!(ch.split());
    // Saturate the D2H lane with writebacks.
    let mut d2h_done = 0.0;
    for _ in 0..4 {
        d2h_done = ch.issue(DmaLane::D2H, 0.0, 2.5);
    }
    assert_eq!(d2h_done, 10.0);
    // A swap-in issued at t=1 is untouched by all of it.
    assert_eq!(ch.issue(DmaLane::H2D, 1.0, 0.5), 1.5);
    assert_eq!(ch.free_at(DmaLane::D2H), 10.0);
    assert_eq!(ch.free_at(DmaLane::H2D), 1.5);
}

/// The same pattern on an unsplit channel pair queues: both directions
/// share one clock, reproducing the legacy single-channel model.
#[test]
fn unsplit_lanes_share_one_clock() {
    let mut ch = DmaChannels::new(false);
    assert!(!ch.split());
    ch.issue(DmaLane::D2H, 0.0, 2.5);
    // The "H2D" transfer waits for the writeback on the shared clock.
    assert_eq!(ch.issue(DmaLane::H2D, 1.0, 0.5), 3.0);
    assert_eq!(ch.free_at(DmaLane::H2D), ch.free_at(DmaLane::D2H));
}

/// Within a lane, completion times are non-decreasing no matter how
/// `now` jitters — the invariant the engine's sorted DMA retirement
/// deques rely on.
#[test]
fn intra_lane_completions_never_reorder() {
    for split in [false, true] {
        let mut ch = DmaChannels::new(split);
        // Issue times deliberately go backwards and leapfrog.
        let issues = [
            (0.9, 1.0),
            (0.1, 0.2),
            (5.0, 0.5),
            (2.0, 3.0),
            (4.0, 0.0),
            (0.0, 7.0),
        ];
        for lane in [DmaLane::H2D, DmaLane::D2H] {
            let mut last = 0.0;
            for (now, secs) in issues {
                let done = ch.issue(lane, now, secs);
                assert!(
                    done >= last,
                    "{lane:?} completions reordered (split={split}): {done} < {last}"
                );
                last = done;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Report-level consequences on the swap path
// ---------------------------------------------------------------------

/// The PR 3/4 pinned preemption scenario: heavy KV overload on one
/// 8 GB IANUS device, the same workload `tests/host_pool.rs` pins its
/// swap accounting against.
fn swap_heavy() -> ServingConfig {
    let shape = RequestShape::new(512, 512);
    ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 120,
        seed: 0x5EED,
        mix: vec![
            RequestClass::new(shape, 0.5),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    }
}

fn run(overlap: bool, two_channel: bool) -> ServingReport {
    ServingSim::new(swap_heavy())
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 32,
            prefill_chunk: Some(128),
            preempt: true,
        })
        .overlap_dma(overlap)
        .two_channel_dma(two_channel)
        .run(&ModelConfig::gpt2_xl())
}

/// Serialized (non-overlapped) DMA stalls compute for every transfer
/// regardless of how many lanes the link has: splitting the channel
/// changes nothing — the whole report is bit-identical to the
/// single-channel run, including the `swap_stall == kv_dma` equality
/// `tests/host_pool.rs` pins.
#[test]
fn serialized_two_channel_is_bit_identical_to_single() {
    let single = run(false, false);
    let split = run(false, true);
    assert_eq!(single.completed, 120);
    assert_eq!(
        single.swap_stall, single.kv_dma,
        "serialized: all DMA stalls"
    );
    assert_eq!(split.swap_stall, split.kv_dma);
    assert_eq!(single, split, "lanes can only matter when DMA overlaps");
}

/// Overlapped DMA is where the second lane pays: swap-ins stop
/// queueing behind writebacks, so compute stall can only shrink. The
/// bytes moved are identical — `kv_dma` sums transfer times, not
/// queueing — and liveness and throughput hold.
#[test]
fn overlapped_two_channel_reduces_stall_at_same_dma() {
    let single = run(true, false);
    let split = run(true, true);
    assert_eq!(single.completed, 120);
    assert_eq!(split.completed, 120);
    assert_eq!(
        split.kv_dma, single.kv_dma,
        "same transfers, same total DMA time"
    );
    assert!(
        split.swap_stall <= single.swap_stall,
        "swap-in priority must not add stall: {} vs {}",
        split.swap_stall,
        single.swap_stall
    );
    assert!(
        split.throughput_rps >= single.throughput_rps * 0.999,
        "a second lane must not cost throughput: {} vs {}",
        split.throughput_rps,
        single.throughput_rps
    );
}
