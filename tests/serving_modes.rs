//! Scheduling-mode integration: both [`Scheduling`] modes must run on
//! every backend type, and the batching economics the device layer
//! encodes must surface in cluster-level sustainable rates — the
//! acceptance story for iteration-level serving.

use ianus::prelude::*;

fn small_mix(rate: f64, requests: u64) -> ServingConfig {
    ServingConfig {
        arrival_rate_hz: rate,
        requests,
        seed: 0xBEEF,
        mix: vec![
            RequestClass::new(RequestShape::new(64, 8), 0.7),
            RequestClass::new(RequestShape::new(128, 16), 0.3),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    }
}

#[test]
fn both_modes_run_on_all_four_backend_types() {
    type BackendFactory = fn() -> Box<dyn Backend>;
    let factories: Vec<(&str, BackendFactory)> = vec![
        ("IANUS", || {
            Box::new(IanusSystem::new(SystemConfig::ianus()))
        }),
        ("IANUS x2", || {
            Box::new(DeviceGroup::new(SystemConfig::ianus(), 2))
        }),
        ("A100", || Box::new(GpuModel::a100())),
        ("DFX", || Box::new(DfxModel::four_fpga())),
    ];
    for (name, make) in factories {
        for scheduling in [
            Scheduling::RequestLevel,
            Scheduling::iteration(4),
            // Chunked prefill and preemptive admission must run on every
            // backend too — including the trait-default ones whose
            // batch_fits admits everything and whose swaps are free.
            Scheduling::IterationLevel {
                max_batch: 4,
                prefill_chunk: Some(32),
                preempt: true,
            },
        ] {
            let r = ServingSim::new(small_mix(2.0, 40))
                .boxed_replica(make())
                .scheduling(scheduling)
                .run(&ModelConfig::gpt2_m());
            assert_eq!(r.completed, 40, "{name} {scheduling:?}");
            assert!(
                r.ttft.p50.as_ms_f64() > 0.0,
                "{name} {scheduling:?}: TTFT not populated"
            );
            assert!(
                r.inter_token.p50.as_ms_f64() > 0.0,
                "{name} {scheduling:?}: ITL not populated"
            );
            assert!(r.ttft.p50 <= r.sojourn.p50, "{name} {scheduling:?}");
            match scheduling {
                Scheduling::RequestLevel => assert_eq!(r.peak_batch, 1, "{name}"),
                Scheduling::IterationLevel { max_batch, .. } => {
                    assert!(r.peak_batch >= 1 && r.peak_batch <= max_batch, "{name}")
                }
            }
        }
    }
}

#[test]
fn gpu_batching_multiplies_sustainable_rate_on_decode_heavy_mix() {
    // The acceptance criterion: on a decode-heavy mix, the same A100
    // cluster sustains at least the request-level rate — in fact several
    // times it — once iteration-level batching (max_batch ≥ 4) amortizes
    // the per-iteration weight streaming and kernel dispatch.
    let model = ModelConfig::gpt2_m();
    let mut req_sim =
        ServingSim::new(ServingConfig::decode_heavy(0.5, 200)).replica(GpuModel::a100());
    let req_rate = req_sim.sustainable_rate(&model, 0.02, 64.0);
    let mut it_sim = ServingSim::new(ServingConfig::decode_heavy(0.5, 200))
        .replica(GpuModel::a100())
        .scheduling(Scheduling::iteration(8));
    let it_rate = it_sim.sustainable_rate(&model, 0.02, 64.0);
    assert!(req_rate > 0.0, "request-level bracket too narrow");
    assert!(
        it_rate >= req_rate * 2.0,
        "batched A100 should multiply its sustainable rate: \
         iteration {it_rate:.2} req/s vs request-level {req_rate:.2} req/s"
    );
}

#[test]
fn ianus_batch1_wins_decode_heavy_regime_against_batched_gpu() {
    // The paper's Section 6.1 claim, cluster-level: batch-1 IANUS
    // sustains a higher decode-heavy rate than even the batched A100.
    let model = ModelConfig::gpt2_m();
    let mut ianus = ServingSim::new(ServingConfig::decode_heavy(0.5, 200))
        .replica(IanusSystem::new(SystemConfig::ianus()));
    let ianus_rate = ianus.sustainable_rate(&model, 0.02, 64.0);
    let mut gpu = ServingSim::new(ServingConfig::decode_heavy(0.5, 200))
        .replica(GpuModel::a100())
        .scheduling(Scheduling::iteration(8));
    let gpu_rate = gpu.sustainable_rate(&model, 0.02, 64.0);
    assert!(
        ianus_rate > gpu_rate,
        "batch-1 IANUS {ianus_rate:.2} req/s vs batched A100 {gpu_rate:.2} req/s"
    );
}
