//! Backend parity: every [`Backend`] implementation's `service_time`
//! must equal the value from its pre-existing direct API, across a grid
//! of models and request shapes. The unified serving path is a view over
//! the device models, never a different model.

use ianus::prelude::*;
use proptest::prelude::*;

fn gpt2_models() -> impl Strategy<Value = ModelConfig> {
    prop::sample::select(ModelConfig::gpt2_family().to_vec())
}

fn shapes() -> impl Strategy<Value = RequestShape> {
    prop::sample::select(vec![
        RequestShape::new(32, 1),
        RequestShape::new(64, 8),
        RequestShape::new(128, 16),
        RequestShape::new(256, 4),
    ])
}

proptest! {
    // Simulated-device cases run whole-device simulations; keep counts
    // modest (the analytical baselines get a full exhaustive grid below).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn ianus_system_parity(model in gpt2_models(), shape in shapes()) {
        let direct = IanusSystem::new(SystemConfig::ianus())
            .run_request(&model, shape)
            .total;
        let mut backend: Box<dyn Backend> =
            Box::new(IanusSystem::new(SystemConfig::ianus()));
        prop_assert_eq!(backend.service_time(&model, shape), direct);
    }

    #[test]
    fn npu_mem_system_parity(model in gpt2_models(), shape in shapes()) {
        let direct = IanusSystem::new(SystemConfig::npu_mem())
            .run_request(&model, shape)
            .total;
        let mut backend: Box<dyn Backend> =
            Box::new(IanusSystem::new(SystemConfig::npu_mem()));
        prop_assert_eq!(backend.service_time(&model, shape), direct);
    }

    #[test]
    fn gpu_model_parity(model in gpt2_models(), shape in shapes()) {
        let direct = GpuModel::a100().request_latency(&model, shape);
        let mut backend: Box<dyn Backend> = Box::new(GpuModel::a100());
        prop_assert_eq!(backend.service_time(&model, shape), direct);
    }

    #[test]
    fn dfx_model_parity(model in gpt2_models(), shape in shapes()) {
        let direct = DfxModel::four_fpga().request_latency(&model, shape);
        let mut backend: Box<dyn Backend> = Box::new(DfxModel::four_fpga());
        prop_assert_eq!(backend.service_time(&model, shape), direct);
    }
}

#[test]
fn device_group_parity() {
    // Multi-device runs are the most expensive; a fixed two-point grid
    // keeps the check cheap while still crossing device counts.
    for (devices, shape) in [
        (2u32, RequestShape::new(64, 2)),
        (4, RequestShape::new(128, 4)),
    ] {
        let model = ModelConfig::gpt_6_7b();
        let direct = DeviceGroup::new(SystemConfig::ianus(), devices)
            .run_request(&model, shape)
            .total;
        let mut backend: Box<dyn Backend> =
            Box::new(DeviceGroup::new(SystemConfig::ianus(), devices));
        assert_eq!(
            backend.service_time(&model, shape),
            direct,
            "{devices} devices"
        );
    }
}

#[test]
fn baseline_parity_exhaustive_grid() {
    // The analytical baselines are closed-form; check the full grid.
    let shapes = [
        RequestShape::new(32, 1),
        RequestShape::new(64, 8),
        RequestShape::new(128, 16),
        RequestShape::new(256, 64),
        RequestShape::new(512, 128),
    ];
    for model in ModelConfig::gpt2_family() {
        for shape in shapes {
            let mut gpu: Box<dyn Backend> = Box::new(GpuModel::a100_megatron());
            assert_eq!(
                gpu.service_time(&model, shape),
                GpuModel::a100_megatron().request_latency(&model, shape),
                "gpu {} {:?}",
                model.name,
                shape
            );
            let mut dfx: Box<dyn Backend> = Box::new(DfxModel::four_fpga());
            assert_eq!(
                dfx.service_time(&model, shape),
                DfxModel::four_fpga().request_latency(&model, shape),
                "dfx {} {:?}",
                model.name,
                shape
            );
        }
    }
}

#[test]
fn fits_agrees_with_capacity_check() {
    use ianus::system::capacity::check_model;
    for model in ModelConfig::all() {
        let via_backend = IanusSystem::new(SystemConfig::ianus()).fits(&model).is_ok();
        let via_capacity = check_model(&SystemConfig::ianus(), &model).is_ok();
        assert_eq!(via_backend, via_capacity, "{}", model.name);
    }
}
