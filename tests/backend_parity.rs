//! Backend parity: every [`Backend`] implementation's `service_time`
//! must equal the value from its pre-existing direct API, across a grid
//! of models and request shapes. The unified serving path is a view over
//! the device models, never a different model.

use ianus::prelude::*;
use proptest::prelude::*;

fn gpt2_models() -> impl Strategy<Value = ModelConfig> {
    prop::sample::select(ModelConfig::gpt2_family().to_vec())
}

fn shapes() -> impl Strategy<Value = RequestShape> {
    prop::sample::select(vec![
        RequestShape::new(32, 1),
        RequestShape::new(64, 8),
        RequestShape::new(128, 16),
        RequestShape::new(256, 4),
    ])
}

proptest! {
    // Simulated-device cases run whole-device simulations; keep counts
    // modest (the analytical baselines get a full exhaustive grid below).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn ianus_system_parity(model in gpt2_models(), shape in shapes()) {
        let direct = IanusSystem::new(SystemConfig::ianus())
            .run_request(&model, shape)
            .total;
        let mut backend: Box<dyn Backend> =
            Box::new(IanusSystem::new(SystemConfig::ianus()));
        prop_assert_eq!(backend.service_time(&model, shape), direct);
    }

    #[test]
    fn npu_mem_system_parity(model in gpt2_models(), shape in shapes()) {
        let direct = IanusSystem::new(SystemConfig::npu_mem())
            .run_request(&model, shape)
            .total;
        let mut backend: Box<dyn Backend> =
            Box::new(IanusSystem::new(SystemConfig::npu_mem()));
        prop_assert_eq!(backend.service_time(&model, shape), direct);
    }

    #[test]
    fn gpu_model_parity(model in gpt2_models(), shape in shapes()) {
        let direct = GpuModel::a100().request_latency(&model, shape);
        let mut backend: Box<dyn Backend> = Box::new(GpuModel::a100());
        prop_assert_eq!(backend.service_time(&model, shape), direct);
    }

    #[test]
    fn dfx_model_parity(model in gpt2_models(), shape in shapes()) {
        let direct = DfxModel::four_fpga().request_latency(&model, shape);
        let mut backend: Box<dyn Backend> = Box::new(DfxModel::four_fpga());
        prop_assert_eq!(backend.service_time(&model, shape), direct);
    }
}

#[test]
fn device_group_parity() {
    // Multi-device runs are the most expensive; a fixed two-point grid
    // keeps the check cheap while still crossing device counts.
    for (devices, shape) in [
        (2u32, RequestShape::new(64, 2)),
        (4, RequestShape::new(128, 4)),
    ] {
        let model = ModelConfig::gpt_6_7b();
        let direct = DeviceGroup::new(SystemConfig::ianus(), devices)
            .run_request(&model, shape)
            .total;
        let mut backend: Box<dyn Backend> =
            Box::new(DeviceGroup::new(SystemConfig::ianus(), devices));
        assert_eq!(
            backend.service_time(&model, shape),
            direct,
            "{devices} devices"
        );
    }
}

#[test]
fn baseline_parity_exhaustive_grid() {
    // The analytical baselines are closed-form; check the full grid.
    let shapes = [
        RequestShape::new(32, 1),
        RequestShape::new(64, 8),
        RequestShape::new(128, 16),
        RequestShape::new(256, 64),
        RequestShape::new(512, 128),
    ];
    for model in ModelConfig::gpt2_family() {
        for shape in shapes {
            let mut gpu: Box<dyn Backend> = Box::new(GpuModel::a100_megatron());
            assert_eq!(
                gpu.service_time(&model, shape),
                GpuModel::a100_megatron().request_latency(&model, shape),
                "gpu {} {:?}",
                model.name,
                shape
            );
            let mut dfx: Box<dyn Backend> = Box::new(DfxModel::four_fpga());
            assert_eq!(
                dfx.service_time(&model, shape),
                DfxModel::four_fpga().request_latency(&model, shape),
                "dfx {} {:?}",
                model.name,
                shape
            );
        }
    }
}

#[test]
fn baseline_step_decomposition_reproduces_request_latency() {
    // prefill + (output − 1) decode iterations must equal the monolithic
    // request latency exactly for both closed-form baselines.
    let shape = RequestShape::new(128, 16);
    for model in [ModelConfig::gpt2_m(), ModelConfig::gpt2_xl()] {
        let mut gpu: Box<dyn Backend> = Box::new(GpuModel::a100());
        let service = gpu.service_time(&model, shape);
        let mut steps = gpu.prefill_time(&model, shape.input);
        for past in shape.input..shape.input + shape.generation_steps() {
            steps += gpu.decode_time(&model, past, 1);
        }
        assert_eq!(steps, service, "gpu {}", model.name);

        let mut dfx: Box<dyn Backend> = Box::new(DfxModel::four_fpga());
        let service = dfx.service_time(&model, shape);
        let mut steps = dfx.prefill_time(&model, shape.input);
        for past in shape.input..shape.input + shape.generation_steps() {
            steps += dfx.decode_time(&model, past, 1);
        }
        assert_eq!(steps, service, "dfx {}", model.name);
    }
}

#[test]
fn batching_economics_match_each_platform() {
    // The quantitative form of the paper's Section 6.1 argument. The
    // GPU's decode is weight-streaming-bound, so a batch-8 iteration
    // costs far less than 8 serial steps; DFX is token-serial, so it
    // costs exactly 8; IANUS serializes too (PIM GEMVs are
    // per-sequence), which is why it can afford to serve batch 1.
    let model = ModelConfig::gpt2_xl();
    let past = 256u64;

    let mut gpu = GpuModel::a100();
    let g1 = Backend::decode_time(&mut gpu, &model, past, 1);
    let g8 = Backend::decode_time(&mut gpu, &model, past, 8);
    assert_eq!(
        g1,
        gpu.stage_latency(&model, &Stage::Generation { past_tokens: past })
    );
    assert!(
        g8.as_ns_f64() < 4.0 * g1.as_ns_f64(),
        "batched GPU decode should amortize weight streaming: {g8} vs 8x{g1}"
    );
    assert!(g8 >= g1);

    let mut dfx = DfxModel::four_fpga();
    let d1 = Backend::decode_time(&mut dfx, &model, past, 1);
    let d8 = Backend::decode_time(&mut dfx, &model, past, 8);
    assert_eq!(d8, d1 * 8);

    let mut ianus = IanusSystem::new(SystemConfig::ianus());
    let i1 = Backend::decode_time(&mut ianus, &model, past, 1);
    let i8 = Backend::decode_time(&mut ianus, &model, past, 8);
    assert_eq!(i8, i1 * 8);

    // And the per-token edge IANUS holds at batch 1 erodes under
    // batching: 8-way batched GPU decode beats 8 serial IANUS tokens
    // per token served.
    assert!(i1 < g1, "batch-1: IANUS token {i1} vs GPU token {g1}");
    assert!(
        g8.as_ns_f64() / 8.0 < i8.as_ns_f64() / 8.0 * 3.0,
        "batched GPU per-token cost should close most of the gap"
    );
}

#[test]
fn baseline_batch_fits_gates_on_kv() {
    // 30B on the A100: 60 GB of weights + ~1 GiB margin leaves ~18 GB of
    // KV headroom; (512,512) sequences cost ~200 MB each, so ~90 fit but
    // 512 must not.
    let model = ModelConfig::gpt_30b();
    let gpu = GpuModel::a100_megatron();
    let shape = RequestShape::new(512, 512);
    let small = Backend::batch_fits(&gpu, &model, &[shape; 4]).unwrap();
    assert!(small > 0.0 && small < 1.0);
    assert!(Backend::batch_fits(&gpu, &model, &vec![shape; 512]).is_err());
    // A model over the sequence limit is refused outright.
    let too_long = RequestShape::new(1500, 1500);
    assert!(Backend::batch_fits(&gpu, &model, &[too_long]).is_err());
}

#[test]
fn fits_agrees_with_capacity_check() {
    use ianus::system::capacity::check_model;
    for model in ModelConfig::all() {
        let via_backend = IanusSystem::new(SystemConfig::ianus()).fits(&model).is_ok();
        let via_capacity = check_model(&SystemConfig::ianus(), &model).is_ok();
        assert_eq!(via_backend, via_capacity, "{}", model.name);
    }
}
