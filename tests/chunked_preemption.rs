//! Chunked-prefill and KV-pressure-preemption invariants, on the real
//! simulated device: preempted sequences always complete, chunked
//! admission never overruns device memory, a chunk at least the prompt
//! degenerates to monolithic prefill exactly — and the acceptance
//! criterion, chunked prefill beating monolithic ITL tails on a
//! long-prompt priority mix at equal arrival rate.

use ianus::prelude::*;
use proptest::prelude::*;

proptest! {
    // Every case prices a fresh device; keep counts modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Preemption's liveness contract: however aggressively optimistic
    /// admission overcommits, every sequence — preempted or not — must
    /// complete, and the pressure checks must never account past
    /// device memory.
    #[test]
    fn preempted_sequences_always_complete(
        seed in 0u64..1000,
        rate in prop::sample::select(vec![10.0f64, 30.0, 60.0]),
        max_batch in 8u32..33,
        chunk in prop::sample::select(vec![None, Some(128u64), Some(256)]),
    ) {
        let cfg = ServingConfig {
            arrival_rate_hz: rate,
            requests: 24,
            seed,
            mix: vec![RequestClass::new(RequestShape::new(512, 512), 1.0)],
            workflows: vec![],
            arrivals: Default::default(),
        };
        let r = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch,
                prefill_chunk: chunk,
                preempt: true,
            })
            .run(&ModelConfig::gpt2_xl());
        prop_assert_eq!(r.completed, 24);
        prop_assert!(r.peak_batch <= max_batch);
        // Under preemption the report may record documented tolerated
        // overcommit slightly above 1 (lone/all-prefilling batches).
        prop_assert!(
            r.peak_kv_occupancy > 0.0 && r.peak_kv_occupancy < 1.25,
            "occupancy {} outside (0, 1.25)", r.peak_kv_occupancy
        );
        prop_assert!(r.preempted_requests <= r.completed);
        prop_assert!(r.preemptions >= u64::from(r.max_preemptions));
        // Class counts partition the total.
        let by_class: u64 = r.per_class.iter().map(|c| c.preemptions).sum();
        prop_assert_eq!(by_class, r.preemptions);
    }

    /// Chunked prefill's memory contract: interleaving chunks with
    /// decode never lets the admission gate's accounting exceed device
    /// memory, with or without preemption.
    #[test]
    fn peak_kv_occupancy_bounded_under_chunked_prefill(
        seed in 0u64..1000,
        chunk in prop::sample::select(vec![64u64, 128, 256]),
        preempt in any::<bool>(),
        shape in prop::sample::select(vec![
            RequestShape::new(256, 128),
            RequestShape::new(512, 512),
        ]),
    ) {
        let cfg = ServingConfig {
            arrival_rate_hz: 40.0,
            requests: 24,
            seed,
            mix: vec![RequestClass::new(shape, 1.0)],
            workflows: vec![],
            arrivals: Default::default(),
        };
        let r = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 8,
                prefill_chunk: Some(chunk),
                preempt,
            })
            .run(&ModelConfig::gpt2_xl());
        prop_assert_eq!(r.completed, 24);
        // Without preemption the admission gate never lets the
        // accounting exceed device memory; with it, only documented
        // tolerated overcommit may nudge past 1.
        let cap = if preempt { 1.25 } else { 1.0 };
        prop_assert!(
            r.peak_kv_occupancy > 0.0 && r.peak_kv_occupancy <= cap,
            "occupancy {} outside (0, {}]", r.peak_kv_occupancy, cap
        );
    }

    /// A chunk size at or above every prompt in the mix takes the same
    /// code path as monolithic prefill, so at batch 1 (and any batch)
    /// the two schedules must be identical — not merely close.
    #[test]
    fn chunk_at_least_prompt_matches_monolithic_exactly(
        seed in 0u64..1000,
        max_batch in 1u32..5,
        chunk in prop::sample::select(vec![128u64, 500, 4096]),
    ) {
        let cfg = ServingConfig {
            arrival_rate_hz: 5.0,
            requests: 40,
            seed,
            mix: vec![RequestClass::new(RequestShape::new(128, 16), 1.0)],
            workflows: vec![],
            arrivals: Default::default(),
        };
        let run = |prefill_chunk| {
            ServingSim::new(cfg.clone())
                .replica(IanusSystem::new(SystemConfig::ianus()))
                .scheduling(Scheduling::IterationLevel {
                    max_batch,
                    prefill_chunk,
                    preempt: false,
                })
                .run(&ModelConfig::gpt2_m())
        };
        prop_assert_eq!(run(Some(chunk)), run(None));
    }
}

/// The acceptance criterion on the real device: at the same arrival
/// rate on the long-prompt priority mix, chunking the prefill cuts the
/// interactive inter-token p99 well below monolithic prefill (each
/// resident decode stalls one 128-token chunk, not one 896-token
/// prompt), without hurting completions or sojourn tails.
#[test]
fn chunked_prefill_beats_monolithic_itl_on_ianus() {
    let model = ModelConfig::gpt2_m();
    // ~70% utilization: long prefills regularly land on a running
    // decode batch (far below that they mostly run alone and both
    // schedules' tails coincide).
    let run = |prefill_chunk| {
        ServingSim::new(ServingConfig::long_prompt(12.0, 300))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 4,
                prefill_chunk,
                preempt: false,
            })
            .run(&model)
    };
    let mono = run(None);
    let chunked = run(Some(128));
    assert_eq!(chunked.completed, mono.completed);
    assert!(
        chunked.inter_token.p99.as_ns_f64() < 0.5 * mono.inter_token.p99.as_ns_f64(),
        "chunked ITL p99 {} should be well under monolithic {}",
        chunked.inter_token.p99,
        mono.inter_token.p99
    );
    assert!(
        chunked.sojourn.p99.as_ns_f64() < 1.2 * mono.sojourn.p99.as_ns_f64(),
        "chunking must not degrade sojourn tails: {} vs {}",
        chunked.sojourn.p99,
        mono.sojourn.p99
    );
}

/// Preemption on a priority mix: batch-tier sequences absorb the
/// evictions, and the preempted work still completes — on the GPU
/// baseline too, whose swap costs come from its PCIe host link rather
/// than IANUS's.
#[test]
fn preemption_runs_on_gpu_baseline_with_priorities() {
    let shape = RequestShape::new(512, 512);
    let cfg = ServingConfig {
        arrival_rate_hz: 60.0,
        requests: 60,
        seed: 3,
        mix: vec![
            RequestClass::new(shape, 0.5),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    };
    // GPT-2 XL KV on 80 GB HBM is roomy; shrink the pressure window by
    // packing many sequences (A100 fits ~250 of these at final length,
    // so overcommit needs a deep slot budget to show).
    let r = ServingSim::new(cfg)
        .replica(GpuModel::a100())
        .scheduling(Scheduling::IterationLevel {
            max_batch: 512,
            prefill_chunk: Some(256),
            preempt: true,
        })
        .run(&ModelConfig::gpt2_xl());
    assert_eq!(r.completed, 60);
    // 60 sequences of ~300 MB KV against 80 GB never actually build
    // pressure — the point is the whole pipeline (priorities, chunking,
    // preemptive admission) runs end-to-end on the baseline backend.
    assert!(r.peak_kv_occupancy <= 1.0);
    let by_class: u64 = r.per_class.iter().map(|c| c.preemptions).sum();
    assert_eq!(by_class, r.preemptions);
}
