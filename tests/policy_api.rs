//! Scheduler-policy API acceptance: the default bundle reproduces the
//! pre-policy (PR 3) scheduler bit-identically on the pinned preemption
//! scenario, non-default eviction policies measurably change the
//! interactive tier's preemption distribution and tails, and *every*
//! built-in eviction policy preserves the liveness invariants of
//! `tests/chunked_preemption.rs`.

use ianus::prelude::*;
use proptest::prelude::*;

/// The PR 3 preemption scenario (`serving_queue`'s closing section,
/// `examples/policy_sweep.rs`'s subject): GPT-2 XL (512,512) drafts,
/// 50/50 interactive/batch tiers, one 8 GB IANUS device, heavy
/// overload.
fn pr3_scenario() -> ServingConfig {
    let shape = RequestShape::new(512, 512);
    ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 120,
        seed: 0x5EED,
        mix: vec![
            RequestClass::new(shape, 0.5),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    }
}

fn run_pr3(policy: SchedulerPolicy) -> ServingReport {
    ServingSim::new(pr3_scenario())
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 32,
            prefill_chunk: Some(128),
            preempt: true,
        })
        .policy(policy)
        .run(&ModelConfig::gpt2_xl())
}

/// The refactor contract: the engine under the default bundle — swap
/// eviction mechanism, serialized (non-overlapped) DMA, a host pool
/// the scenario never fills — reproduces the pinned schedule
/// **bit-identically**: the integer counters (the PR 3/PR 4 values,
/// unchanged) are exact and the latency pins hold to sub-nanosecond.
/// The latency/throughput pins were refreshed in PR 5 for two bugfixes
/// that legitimately moved them: the heterogeneous-batch decode mean is
/// now rounded instead of floored, and utilization stopped counting
/// swap DMA as compute (0.9971 → 0.9939 here; the schedule itself is
/// unchanged — every count and the tier split are still exactly PR 3).
#[test]
fn default_bundle_reproduces_pinned_numbers_bit_identically() {
    let r = run_pr3(SchedulerPolicy::default());
    assert_eq!(r.completed, 120);
    assert_eq!(r.preemptions, 166);
    assert_eq!(r.preempted_requests, 55);
    assert_eq!(r.max_preemptions, 7);
    assert_eq!(r.peak_batch, 32);
    assert_eq!(r.per_class[0].preemptions, 1);
    assert_eq!(r.per_class[1].preemptions, 165);
    assert_eq!(r.per_class[0].completed, 63);
    assert_eq!(r.per_class[1].completed, 57);
    let pins = [
        (
            r.sojourn.p50.as_ns_f64(),
            156_044_606_306.706,
            "p50 sojourn",
        ),
        (
            r.sojourn.p99.as_ns_f64(),
            249_635_468_799.372,
            "p99 sojourn",
        ),
        (r.ttft.p99.as_ns_f64(), 202_167_897_121.038, "ttft p99"),
        (r.inter_token.p50.as_ns_f64(), 109_027_501.291, "itl p50"),
        (r.inter_token.p99.as_ns_f64(), 144_886_619.462, "itl p99"),
        (
            r.mean_service.as_ns_f64(),
            2_346_781_227.852,
            "mean service",
        ),
        (
            r.per_class[0].sojourn.p99.as_ns_f64(),
            246_155_686_630.681,
            "interactive p99",
        ),
    ];
    for (got, want, what) in pins {
        assert!(
            (got - want).abs() < 0.5,
            "{what}: {got} ns vs pinned {want} ns"
        );
    }
    assert!((r.peak_kv_occupancy - 0.999_997_258_186_340_3).abs() < 1e-12);
    assert!((r.throughput_rps - 0.421_288_248_707_171_13).abs() < 1e-12);
    assert!((r.utilization - 0.993_946_396_393_345).abs() < 1e-12);
    // No SLOs in the mix: attainment is vacuous, goodput == throughput.
    assert_eq!(r.slo_attainment, 1.0);
    assert!((r.goodput_rps - r.throughput_rps).abs() < 1e-12);
    // Swap accounting: all 332 transfers (166 each way) are DMA, every
    // one stalls the serialized clock, none counts as compute.
    assert!((r.kv_dma.as_secs_f64() - 0.912_292_176).abs() < 1e-6);
    assert_eq!(r.kv_dma, r.swap_stall, "no overlap: every transfer stalls");
    assert_eq!(r.per_replica[0].kv_dma, r.kv_dma);
    // The 32 GiB default IANUS host pool absorbs the ~3.2 GiB of
    // swapped KV without ever forcing a recompute.
    assert_eq!(r.recomputes, 0);
    assert_eq!(r.host_kv_peak_bytes, 3_386_769_408);
    assert!((r.host_kv_peak_occupancy - 0.098_567_963).abs() < 1e-6);
}

/// The tentpole's reduction contract: forcing an **unbounded host
/// pool** leaves the default-settings schedule bit-identical (the
/// pool only matters when it would overflow), and the report itself —
/// minus the pool-occupancy fields — matches the pinned run exactly.
#[test]
fn unbounded_pool_reduces_to_pinned_baseline() {
    let mut bounded = run_pr3(SchedulerPolicy::default());
    let unbounded = ServingSim::new(pr3_scenario())
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::IterationLevel {
            max_batch: 32,
            prefill_chunk: Some(128),
            preempt: true,
        })
        .host_kv_pool(None)
        .run(&ModelConfig::gpt2_xl());
    // An unbounded pool reports no occupancy; everything else is
    // identical, byte for byte.
    assert_eq!(unbounded.host_kv_peak_occupancy, 0.0);
    assert_eq!(unbounded.host_kv_peak_bytes, bounded.host_kv_peak_bytes);
    bounded.host_kv_peak_occupancy = 0.0;
    assert_eq!(unbounded, bounded);
}

/// The acceptance criterion's other half: non-default eviction policies
/// measurably change the interactive tier's preemption distribution
/// (largest-KV is tier-blind, so interactive sequences swap too) and
/// the overall schedule (least-progress needs fewer swaps).
#[test]
fn non_default_eviction_changes_interactive_tier() {
    let default = run_pr3(SchedulerPolicy::default());
    let largest = run_pr3(SchedulerPolicy::default().with_eviction(LargestKv));
    let least = run_pr3(SchedulerPolicy::default().with_eviction(LeastProgress));
    for (name, r) in [("largest-kv", &largest), ("least-progress", &least)] {
        assert_eq!(r.completed, 120, "{name}: liveness");
        assert!(r.preemptions > 0, "{name}: pressure must trigger");
    }
    // Tier-blind victim selection moves evictions onto the interactive
    // class — under the default it absorbs almost none.
    assert!(
        largest.per_class[0].preemptions > 10 * default.per_class[0].preemptions.max(1),
        "largest-kv interactive preemptions {} should dwarf the default's {}",
        largest.per_class[0].preemptions,
        default.per_class[0].preemptions
    );
    // And the interactive sojourn tail shifts measurably (>5%).
    let rel = (largest.per_class[0].sojourn.p99.as_ns_f64()
        - default.per_class[0].sojourn.p99.as_ns_f64())
    .abs()
        / default.per_class[0].sojourn.p99.as_ns_f64();
    assert!(
        rel > 0.05,
        "largest-kv should move the interactive p99 ({rel:.3} rel change)"
    );
    // Least-progress changes the preemption count itself (it loses the
    // least completed work per swap, re-evicting fresh re-admissions
    // less often than youngest-first does).
    assert_ne!(least.preemptions, default.preemptions);
}

/// An SLO on the interactive tier turns the sweep into a scored
/// comparison: attainment and goodput differ across eviction policies
/// on the same trace (the `policy_sweep` example's claim).
#[test]
fn eviction_policies_score_differently_under_slo() {
    let slo = Slo::new(Duration::from_secs_f64(60.0), Duration::from_ms(150));
    let mut cfg = pr3_scenario();
    cfg.mix[0] = cfg.mix[0].with_slo(slo);
    let run = |policy: SchedulerPolicy| {
        ServingSim::new(cfg.clone())
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 32,
                prefill_chunk: Some(128),
                preempt: true,
            })
            .policy(policy)
            .run(&ModelConfig::gpt2_xl())
    };
    let default = run(SchedulerPolicy::default());
    let largest = run(SchedulerPolicy::default().with_eviction(LargestKv));
    // The batch class carries no SLO, so it trivially attains in both.
    assert_eq!(default.per_class[1].slo_attainment, 1.0);
    assert_eq!(largest.per_class[1].slo_attainment, 1.0);
    // The schedules differ, and so do the scores.
    assert!(
        (default.slo_attainment - largest.slo_attainment).abs() > 0.01,
        "attainment should differ: default {} vs largest-kv {}",
        default.slo_attainment,
        largest.slo_attainment
    );
    for r in [&default, &largest] {
        assert!(r.goodput_rps <= r.throughput_rps + 1e-12);
        assert!(
            (r.goodput_rps - r.throughput_rps * r.slo_attainment).abs() < 1e-9,
            "goodput must equal throughput x attainment"
        );
    }
}

/// Deadline-aware policies run end-to-end on the A100 baseline backend
/// too (policies are engine-level, not IANUS-specific).
#[test]
fn deadline_policies_run_on_gpu_baseline() {
    let shape = RequestShape::new(512, 512);
    let slo = Slo::new(Duration::from_secs_f64(30.0), Duration::from_ms(100));
    let cfg = ServingConfig {
        arrival_rate_hz: 60.0,
        requests: 60,
        seed: 3,
        mix: vec![
            RequestClass::new(shape, 0.5).with_slo(slo),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    };
    let r = ServingSim::new(cfg)
        .replica(GpuModel::a100())
        .scheduling(Scheduling::IterationLevel {
            max_batch: 512,
            prefill_chunk: Some(256),
            preempt: true,
        })
        .policy(
            SchedulerPolicy::default()
                .with_admission(DeadlineAdmission)
                .with_readmission(DeadlineReadmission),
        )
        .run(&ModelConfig::gpt2_xl());
    assert_eq!(r.completed, 60);
    assert!(r.slo_attainment > 0.0 && r.slo_attainment <= 1.0);
    assert!(r.goodput_rps <= r.throughput_rps + 1e-12);
}

fn eviction_by_index(i: usize) -> SchedulerPolicy {
    match i {
        0 => SchedulerPolicy::default().with_eviction(LowestPriorityYoungest),
        1 => SchedulerPolicy::default().with_eviction(LargestKv),
        _ => SchedulerPolicy::default().with_eviction(LeastProgress),
    }
}

proptest! {
    // Every case prices a fresh device; keep counts modest.
    #![proptest_config(ProptestConfig::with_cases(9))]

    /// The liveness invariants of `tests/chunked_preemption.rs`, for
    /// **every** built-in eviction policy: however aggressively
    /// optimistic admission overcommits and whatever the victim rule,
    /// every sequence — preempted or not — completes, prefilling and
    /// lone sequences are never evicted (observable as: the run
    /// terminates with all requests done), and the pressure checks
    /// never account past device memory beyond the documented tolerated
    /// overcommit.
    #[test]
    fn every_eviction_policy_preserves_liveness(
        eviction in 0usize..3,
        seed in 0u64..1000,
        rate in prop::sample::select(vec![10.0f64, 30.0, 60.0]),
        max_batch in 8u32..33,
        chunk in prop::sample::select(vec![None, Some(128u64), Some(256)]),
    ) {
        let cfg = ServingConfig {
            arrival_rate_hz: rate,
            requests: 24,
            seed,
            mix: vec![
                RequestClass::new(RequestShape::new(512, 512), 0.5),
                RequestClass::new(RequestShape::new(512, 512), 0.5)
                    .with_priority(Priority::Batch),
            ],
            workflows: vec![],
            arrivals: Default::default(),
        };
        let r = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch,
                prefill_chunk: chunk,
                preempt: true,
            })
            .policy(eviction_by_index(eviction))
            .run(&ModelConfig::gpt2_xl());
        prop_assert_eq!(r.completed, 24);
        prop_assert!(r.peak_batch <= max_batch);
        // Under preemption the report may record documented tolerated
        // overcommit slightly above 1 (lone/all-prefilling batches).
        prop_assert!(
            r.peak_kv_occupancy > 0.0 && r.peak_kv_occupancy < 1.25,
            "occupancy {} outside (0, 1.25)", r.peak_kv_occupancy
        );
        prop_assert!(r.preempted_requests <= r.completed);
        prop_assert!(r.preemptions >= u64::from(r.max_preemptions));
        // Class counts partition the total.
        let by_class: u64 = r.per_class.iter().map(|c| c.preemptions).sum();
        prop_assert_eq!(by_class, r.preemptions);
        // Every sequence that finished got a TTFT and its tail is
        // recorded: max dominates p99 in each distribution.
        prop_assert!(r.sojourn.max >= r.sojourn.p99);
        prop_assert!(r.ttft.max >= r.ttft.p99);
        prop_assert!(r.inter_token.max >= r.inter_token.p99);
    }

    /// Policy sweeps are seed-stable for every eviction policy: same
    /// bundle, same seed, same report.
    #[test]
    fn policy_runs_are_deterministic(eviction in 0usize..3, seed in 0u64..100) {
        let cfg = ServingConfig {
            arrival_rate_hz: 30.0,
            requests: 16,
            seed,
            mix: vec![
                RequestClass::new(RequestShape::new(512, 512), 0.5),
                RequestClass::new(RequestShape::new(512, 512), 0.5)
                    .with_priority(Priority::Batch),
            ],
            workflows: vec![],
            arrivals: Default::default(),
        };
        let run = || {
            ServingSim::new(cfg.clone())
                .replica(IanusSystem::new(SystemConfig::ianus()))
                .scheduling(Scheduling::IterationLevel {
                    max_batch: 16,
                    prefill_chunk: Some(128),
                    preempt: true,
                })
                .policy(eviction_by_index(eviction))
                .run(&ModelConfig::gpt2_xl())
        };
        prop_assert_eq!(run(), run());
    }
}
