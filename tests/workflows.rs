//! Agentic workflow subsystem (PR 9): DAG validation, runtime
//! release/cancellation, KV inheritance, and the contract that the
//! whole layer is *inert* for flat mixes — a single-node workflow is
//! bit-identical to the equivalent flat mix on both engine cores, and
//! random DAGs with speculative cancellations settle cleanly (every
//! node completes or cancels; the engine's end-of-run block-conservation
//! asserts catch any leaked KV in these debug-build runs).

use ianus::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Cheap deterministic backend (same spirit as tests/event_core.rs)
// ---------------------------------------------------------------------

/// Analytic node with a KV byte budget small enough that workflow
/// bursts create real admission pressure, and a host pool so preemptive
/// runs exercise swap accounting under inherited prefixes.
#[derive(Debug, Clone, Copy)]
struct MemNode {
    kv_bytes: u64,
    host_bytes: u64,
    host_gbps: f64,
}

impl MemNode {
    fn tight() -> Self {
        MemNode {
            kv_bytes: 256 << 20,
            host_bytes: 128 << 20,
            host_gbps: 8.0,
        }
    }
}

impl Backend for MemNode {
    fn name(&self) -> &str {
        "mem node"
    }

    fn service_time(&mut self, _model: &ModelConfig, shape: RequestShape) -> Duration {
        Duration::from_us(20) * shape.input
            + Duration::from_us(150) * shape.output.saturating_sub(1)
    }

    fn fits(&self, _model: &ModelConfig) -> Result<(), CapacityError> {
        Ok(())
    }

    fn prefill_time(&mut self, _model: &ModelConfig, tokens: u64) -> Duration {
        Duration::from_us(20) * tokens.max(1)
    }

    fn decode_time(&mut self, _model: &ModelConfig, past_tokens: u64, batch: u32) -> Duration {
        Duration::from_us(100)
            + Duration::from_us(8) * u64::from(batch.max(1))
            + Duration::from_ns(50) * past_tokens
    }

    fn batch_fits(
        &self,
        model: &ModelConfig,
        batch: &[RequestShape],
    ) -> Result<f64, CapacityError> {
        let kv: u64 = batch
            .iter()
            .map(|r| model.kv_bytes_per_token() * r.total_tokens())
            .sum();
        if kv > self.kv_bytes {
            Err(CapacityError::OutOfMemory {
                required: kv,
                available: self.kv_bytes,
            })
        } else {
            Ok(kv as f64 / self.kv_bytes as f64)
        }
    }

    fn kv_transfer_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        let bytes = ianus::system::capacity::kv_swap_bytes(model, tokens);
        Duration::from_ns_f64(bytes as f64 / self.host_gbps)
    }

    fn host_kv_bytes(&self) -> Option<u64> {
        Some(self.host_bytes)
    }

    fn kv_budget_bytes(&self, _model: &ModelConfig, _widest_input: u64) -> Option<u64> {
        Some(self.kv_bytes)
    }

    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(*self))
    }
}

fn build(cfg: ServingConfig, kv_block: u64, mode: CoreMode) -> ServingSim {
    ServingSim::new(cfg)
        .cluster(2, |_| MemNode::tight())
        .scheduling(Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: Some(64),
            preempt: true,
        })
        .kv_block(kv_block)
        .core_mode(mode)
}

// ---------------------------------------------------------------------
// Preflight validation
// ---------------------------------------------------------------------

/// A cycle (even a self-edge) and a dangling parent are both rejected
/// before any simulation state exists; an empty template too.
#[test]
fn cyclic_and_dangling_templates_rejected() {
    // 0 -> 1 -> 0 back-edge.
    let cycle = WorkflowTemplate::new(
        vec![
            WorkflowNode::with_parents(RequestShape::new(32, 16), vec![1]),
            WorkflowNode::with_parents(RequestShape::new(32, 16), vec![0]),
        ],
        1.0,
    );
    assert!(matches!(cycle.validate(), Err(WorkflowError::Cycle { .. })));

    let dangling = WorkflowTemplate::new(
        vec![
            WorkflowNode::new(RequestShape::new(32, 16)),
            WorkflowNode::with_parents(RequestShape::new(32, 16), vec![7]),
        ],
        1.0,
    );
    assert!(matches!(
        dangling.validate(),
        Err(WorkflowError::DanglingParent { node: 1, parent: 7 })
    ));

    let empty = WorkflowTemplate::new(vec![], 1.0);
    assert!(matches!(empty.validate(), Err(WorkflowError::Empty)));

    // The builtins are valid by construction.
    for tpl in [
        WorkflowTemplate::agent_chain(),
        WorkflowTemplate::tool_fanout(),
        WorkflowTemplate::speculative(),
    ] {
        tpl.validate().expect("builtin template must validate");
    }
}

/// The config constructor front-loads the same validation.
#[test]
#[should_panic(expected = "workflow template 0 is invalid")]
fn workflow_mix_panics_on_invalid_template() {
    let cycle = WorkflowTemplate::new(
        vec![WorkflowNode::with_parents(
            RequestShape::new(32, 16),
            vec![0],
        )],
        1.0,
    );
    let _ = ServingConfig::workflow_mix(4.0, 10, vec![cycle]);
}

// ---------------------------------------------------------------------
// Inertness: single-node workflows == flat mixes
// ---------------------------------------------------------------------

/// A workflow whose every template is one parentless node is the flat
/// mix with the same shapes and weights: same draws, same admissions,
/// same report — on both cores, paged and contiguous. Only the
/// workflow-layer metrics differ (each instance settles as a completed
/// workflow), so those fields are equalized before the comparison.
#[test]
fn single_node_workflows_match_flat_mix_on_both_cores() {
    let shapes = [
        (RequestShape::new(128, 32), 0.7),
        (RequestShape::new(256, 64), 0.3),
    ];
    let flat_cfg = ServingConfig {
        arrival_rate_hz: 8.0,
        requests: 80,
        seed: 0x5EED,
        mix: shapes
            .iter()
            .map(|&(s, w)| RequestClass::new(s, w))
            .collect(),
        workflows: vec![],
        arrivals: Default::default(),
    };
    let wf_cfg = ServingConfig::workflow_mix(
        8.0,
        80,
        shapes
            .iter()
            .map(|&(s, w)| WorkflowTemplate::new(vec![WorkflowNode::new(s)], w))
            .collect(),
    );
    for mode in [CoreMode::EventDriven, CoreMode::StepScan] {
        for kv_block in [0u64, 64] {
            let flat = build(flat_cfg.clone(), kv_block, mode).run(&ModelConfig::gpt2_xl());
            let mut wf = build(wf_cfg.clone(), kv_block, mode).run(&ModelConfig::gpt2_xl());
            assert_eq!(wf.completed_workflows, 80, "{mode:?} block={kv_block}");
            assert_eq!(wf.cancelled_nodes, 0);
            // Single nodes have no parents, so nothing is inheritable.
            assert_eq!(wf.inherited_prefix_ratio, 0.0);
            wf.workflow_latency = flat.workflow_latency;
            wf.workflow_slo_attainment = flat.workflow_slo_attainment;
            wf.completed_workflows = flat.completed_workflows;
            assert_eq!(wf, flat, "{mode:?} block={kv_block}");
        }
    }
}

// ---------------------------------------------------------------------
// Built-in templates end to end
// ---------------------------------------------------------------------

/// Speculative groups cancel exactly the losers: with the builtin
/// 5-node speculative template (root, two speculative branches, one
/// tail each) every instance settles with one branch's subtree
/// (branch + tail) cancelled — completions + cancellations account
/// for every node, and every instance finishes.
#[test]
fn speculative_groups_cancel_loser_subtrees() {
    let tpl = WorkflowTemplate::speculative();
    let nodes = tpl.node_count() as u64;
    let instances = 40;
    let cfg = ServingConfig::workflow_mix(6.0, instances, vec![tpl]);
    for mode in [CoreMode::EventDriven, CoreMode::StepScan] {
        let r = build(cfg.clone(), 64, mode).run(&ModelConfig::gpt2_xl());
        assert_eq!(r.completed_workflows, instances, "{mode:?}");
        assert_eq!(
            r.completed + r.cancelled_nodes,
            instances * nodes,
            "every node completes or cancels ({mode:?})"
        );
        assert!(
            r.cancelled_nodes > 0,
            "first-finisher arbitration must cancel losers ({mode:?})"
        );
        // A loser that already started still runs to completion, so
        // cancellations are at most one branch subtree per instance.
        assert!(r.cancelled_nodes <= instances * 2, "{mode:?}");
    }
}

/// KV inheritance is real and switchable: under paged accounting an
/// agent chain's children admit onto the parent's published blocks
/// (nonzero inherited ratio, prefix hits), and disabling inheritance
/// zeroes it without breaking settlement.
#[test]
fn chain_children_inherit_parent_kv_under_paging() {
    let cfg = ServingConfig::workflow_mix(4.0, 30, vec![WorkflowTemplate::agent_chain()]);
    for mode in [CoreMode::EventDriven, CoreMode::StepScan] {
        let inherit = build(cfg.clone(), 64, mode).run(&ModelConfig::gpt2_xl());
        assert!(
            inherit.inherited_prefix_ratio > 0.0,
            "chain children must land on inherited blocks ({mode:?})"
        );
        assert!(inherit.prefix_cache_hits > 0, "{mode:?}");
        let cold = build(cfg.clone(), 64, mode)
            .workflow_inheritance(false)
            .run(&ModelConfig::gpt2_xl());
        assert_eq!(cold.inherited_prefix_ratio, 0.0, "{mode:?}");
        assert_eq!(cold.completed_workflows, 30, "{mode:?}");
        assert_eq!(inherit.completed_workflows, 30, "{mode:?}");
    }
}

// ---------------------------------------------------------------------
// Property net: random DAGs settle cleanly on both cores
// ---------------------------------------------------------------------

/// A random DAG template: node `i`'s parents are a subset of `0..i`
/// (acyclic by construction), with an optional speculative pair racing
/// under the root. Shapes stay small so the proptest grid runs fast.
fn random_template(
    node_shapes: &[(u64, u64)],
    parent_masks: &[u64],
    speculate: bool,
) -> WorkflowTemplate {
    let mut nodes: Vec<WorkflowNode> = Vec::with_capacity(node_shapes.len());
    for (i, &(input, output)) in node_shapes.iter().enumerate() {
        let shape = RequestShape::new(16 + input, 8 + output);
        let parents: Vec<usize> = (0..i)
            .filter(|&p| parent_masks[i] & (1 << p) != 0)
            .collect();
        // Race the first two children of node 0 against each other.
        let node = if speculate && (1..=2).contains(&i) && parent_masks[i] & 1 != 0 {
            WorkflowNode::speculative(shape, parents, 1)
        } else if parents.is_empty() {
            WorkflowNode::new(shape)
        } else {
            WorkflowNode::with_parents(shape, parents)
        };
        nodes.push(node);
    }
    WorkflowTemplate::new(nodes, 1.0).with_deadline(120.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any random DAG (with or without a speculative race), any
    /// paging mode, and both engine cores: the run terminates, every
    /// instance settles, completions + cancellations account for every
    /// node drawn, and the two cores agree bit-for-bit. The engine's
    /// debug asserts (block conservation, empty host pool) make any
    /// leaked KV a panic in these runs.
    #[test]
    fn random_dags_settle_cleanly_on_both_cores(
        n_nodes in 1usize..6,
        shape_seed in prop::collection::vec((0u64..96, 0u64..48), 6..7),
        parent_masks in prop::collection::vec(any::<u64>(), 6..7),
        speculate in any::<bool>(),
        kv_block in prop::sample::select(vec![0u64, 64]),
        rate in prop::sample::select(vec![2.0f64, 8.0]),
    ) {
        let tpl = random_template(&shape_seed[..n_nodes], &parent_masks[..n_nodes], speculate);
        prop_assert!(tpl.validate().is_ok());
        let nodes = tpl.node_count() as u64;
        let instances = 20u64;
        let cfg = ServingConfig::workflow_mix(rate, instances, vec![tpl]);
        let model = ModelConfig::gpt2_xl();
        let event = build(cfg.clone(), kv_block, CoreMode::EventDriven).run(&model);
        let scan = build(cfg, kv_block, CoreMode::StepScan).run(&model);
        prop_assert_eq!(&event, &scan);
        prop_assert_eq!(event.completed_workflows, instances);
        prop_assert_eq!(event.completed + event.cancelled_nodes, instances * nodes);
        if !speculate {
            prop_assert_eq!(event.cancelled_nodes, 0);
        }
    }
}
