//! Event-driven engine core regression net.
//!
//! The iteration-level loop ships two cores behind one contract:
//! [`CoreMode::EventDriven`] (heap-scheduled replica index, sorted DMA
//! deques — the default) and [`CoreMode::StepScan`] (the literal
//! per-step scans the engine grew up with, kept as the executable
//! reference). This suite holds them to **whole-report bit-identity**
//! across the engine's feature grid, pins the parallel-sweep
//! determinism contract (`sweep_rates` parallel == serial, result
//! order preserved), and covers the divergence guard: an aborted probe
//! reports `diverged` and never perturbs the rate a bisection returns.

use ianus::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// A cheap deterministic backend with a full memory model
// ---------------------------------------------------------------------

/// Analytic node with real capacity pressure: a KV byte budget small
/// enough that overload preempts, a finite host pool so swap-outs can
/// degrade to recompute, and a slow host link so swap timing matters.
/// Every cost is a couple of float ops, which keeps the differential
/// grid fast, and it clones, which lets the sweep tests take the
/// parallel path.
#[derive(Debug, Clone, Copy)]
struct MemNode {
    /// Device bytes available for KV.
    kv_bytes: u64,
    /// Host pool for swapped-out KV.
    host_bytes: u64,
    /// Host-link bandwidth in GB/s.
    host_gbps: f64,
}

impl MemNode {
    fn tight() -> Self {
        // ~4 final-length (128,64) GPT-2 XL sequences of device KV and
        // ~2 of host pool: preemption under load, with recompute
        // fallback once the pool fills.
        MemNode {
            kv_bytes: 256 << 20,
            host_bytes: 128 << 20,
            host_gbps: 8.0,
        }
    }
}

impl Backend for MemNode {
    fn name(&self) -> &str {
        "mem node"
    }

    fn service_time(&mut self, _model: &ModelConfig, shape: RequestShape) -> Duration {
        Duration::from_us(20) * shape.input
            + Duration::from_us(150) * shape.output.saturating_sub(1)
    }

    fn fits(&self, _model: &ModelConfig) -> Result<(), CapacityError> {
        Ok(())
    }

    fn prefill_time(&mut self, _model: &ModelConfig, tokens: u64) -> Duration {
        Duration::from_us(20) * tokens.max(1)
    }

    fn decode_time(&mut self, _model: &ModelConfig, past_tokens: u64, batch: u32) -> Duration {
        // Past-dependent so heterogeneous batches price differently.
        Duration::from_us(100)
            + Duration::from_us(8) * u64::from(batch.max(1))
            + Duration::from_ns(50) * past_tokens
    }

    fn batch_fits(
        &self,
        model: &ModelConfig,
        batch: &[RequestShape],
    ) -> Result<f64, CapacityError> {
        let kv: u64 = batch
            .iter()
            .map(|r| model.kv_bytes_per_token() * r.total_tokens())
            .sum();
        if kv > self.kv_bytes {
            Err(CapacityError::OutOfMemory {
                required: kv,
                available: self.kv_bytes,
            })
        } else {
            Ok(kv as f64 / self.kv_bytes as f64)
        }
    }

    fn kv_transfer_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        let bytes = ianus::system::capacity::kv_swap_bytes(model, tokens);
        Duration::from_ns_f64(bytes as f64 / self.host_gbps)
    }

    fn host_kv_bytes(&self) -> Option<u64> {
        Some(self.host_bytes)
    }

    fn kv_budget_bytes(&self, _model: &ModelConfig, _widest_input: u64) -> Option<u64> {
        Some(self.kv_bytes)
    }

    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(*self))
    }
}

/// A `MemNode` that refuses to clone — forces the serial sweep path.
#[derive(Debug, Clone, Copy)]
struct Uncloneable(MemNode);

impl Backend for Uncloneable {
    // Same display name as `MemNode`: the fallback test compares whole
    // reports (which embed replica names) across the two backends.
    fn name(&self) -> &str {
        "mem node"
    }
    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        self.0.service_time(model, shape)
    }
    fn fits(&self, model: &ModelConfig) -> Result<(), CapacityError> {
        self.0.fits(model)
    }
    fn prefill_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        self.0.prefill_time(model, tokens)
    }
    fn decode_time(&mut self, model: &ModelConfig, past: u64, batch: u32) -> Duration {
        self.0.decode_time(model, past, batch)
    }
    fn batch_fits(
        &self,
        model: &ModelConfig,
        batch: &[RequestShape],
    ) -> Result<f64, CapacityError> {
        self.0.batch_fits(model, batch)
    }
    fn kv_transfer_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        self.0.kv_transfer_time(model, tokens)
    }
    fn host_kv_bytes(&self) -> Option<u64> {
        self.0.host_kv_bytes()
    }
    fn kv_budget_bytes(&self, model: &ModelConfig, widest: u64) -> Option<u64> {
        self.0.kv_budget_bytes(model, widest)
    }
    // No clone_box override: the default `None` is the point.
}

// ---------------------------------------------------------------------
// Differential: event-driven core ≡ step-scan core
// ---------------------------------------------------------------------

fn mixes() -> Vec<Vec<RequestClass>> {
    let small = RequestShape::new(64, 32);
    let big = RequestShape::new(128, 64);
    let slo = Slo::new(Duration::from_secs_f64(30.0), Duration::from_ms(100));
    vec![
        vec![RequestClass::new(big, 1.0)],
        vec![
            RequestClass::new(small, 0.5).with_slo(slo),
            RequestClass::new(big, 0.5).with_priority(Priority::Batch),
        ],
        vec![
            RequestClass::new(small, 0.3),
            RequestClass::new(big, 0.7).with_shared_prefix(48),
        ],
    ]
}

#[allow(clippy::too_many_arguments)] // mirrors the proptest grid axes
fn build(
    cfg: &ServingConfig,
    replicas: usize,
    max_batch: u32,
    chunk: Option<u64>,
    preempt: bool,
    overlap: bool,
    kv_block: u64,
    mode: CoreMode,
) -> ServingSim {
    ServingSim::new(cfg.clone())
        .cluster(replicas, |_| MemNode::tight())
        .scheduling(Scheduling::IterationLevel {
            max_batch,
            prefill_chunk: chunk,
            preempt,
        })
        .overlap_dma(overlap)
        .kv_block(kv_block)
        .core_mode(mode)
}

proptest! {
    // Each case is two full runs; keep the count modest — the grid
    // below still crosses seeds × rates × mixes × scheduling knobs.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole contract: for any workload and any combination of
    /// preemption / overlapped DMA / paged-vs-legacy KV, the
    /// event-driven core's report equals the step-scan core's report
    /// **exactly** — same floats, same counters, same schedules.
    #[test]
    fn event_core_is_bit_identical_to_step_scan(
        seed in any::<u64>(),
        rate in prop::sample::select(vec![1.0f64, 4.0, 12.0]),
        mix_i in 0usize..3,
        replicas in 1usize..4,
        max_batch in prop::sample::select(vec![4u32, 8]),
        chunk in prop::sample::select(vec![None, Some(32u64)]),
        preempt in any::<bool>(),
        overlap in any::<bool>(),
        kv_block in prop::sample::select(vec![0u64, 64]),
    ) {
        let cfg = ServingConfig {
            arrival_rate_hz: rate,
            requests: 40,
            seed,
            mix: mixes()[mix_i].clone(),
            workflows: vec![],
            arrivals: Default::default(),
        };
        let model = ModelConfig::gpt2_xl();
        let event = build(&cfg, replicas, max_batch, chunk, preempt, overlap, kv_block,
                          CoreMode::EventDriven).run(&model);
        let scan = build(&cfg, replicas, max_batch, chunk, preempt, overlap, kv_block,
                         CoreMode::StepScan).run(&model);
        prop_assert_eq!(event, scan);
    }
}

/// The PR 5 pinned preemption scenario (166 preemptions on the default
/// policy — `tests/policy_api.rs` pins the full report) replayed on
/// both cores: the refactor's named regression gate.
#[test]
fn pinned_preemption_scenario_identical_on_both_cores() {
    let shape = RequestShape::new(512, 512);
    let cfg = ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 120,
        seed: 0x5EED,
        mix: vec![
            RequestClass::new(shape, 0.5),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    };
    let run = |mode| {
        ServingSim::new(cfg.clone())
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 32,
                prefill_chunk: Some(128),
                preempt: true,
            })
            .core_mode(mode)
            .run(&ModelConfig::gpt2_xl())
    };
    let event = run(CoreMode::EventDriven);
    let scan = run(CoreMode::StepScan);
    assert_eq!(event.preemptions, 166, "the pinned schedule");
    assert_eq!(event, scan);
}

/// The paged pinned scenario (351 preemptions — `tests/paged_kv.rs`
/// pins the count) is likewise core-independent.
#[test]
fn pinned_paged_scenario_identical_on_both_cores() {
    let run = |mode| {
        ServingSim::new(ServingConfig::shared_prefix(8.0, 200))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 48,
                prefill_chunk: Some(128),
                preempt: true,
            })
            .kv_block(64)
            .core_mode(mode)
            .run(&ModelConfig::gpt2_xl())
    };
    let event = run(CoreMode::EventDriven);
    let scan = run(CoreMode::StepScan);
    assert_eq!(event.preemptions, 351, "the pinned paged schedule");
    assert_eq!(event, scan);
}

// ---------------------------------------------------------------------
// Parallel sweeps: determinism and the serial fallback
// ---------------------------------------------------------------------

fn sweep_cfg() -> ServingConfig {
    ServingConfig {
        arrival_rate_hz: 1.0,
        requests: 60,
        seed: 0xD15C,
        mix: vec![
            RequestClass::new(RequestShape::new(64, 32), 0.6),
            RequestClass::new(RequestShape::new(128, 64), 0.4),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    }
}

/// `sweep_rates` probes on cloned engines across threads; the reports
/// must equal a serial run of each rate on a fresh engine, in the same
/// order.
#[test]
fn sweep_rates_parallel_matches_serial() {
    let model = ModelConfig::gpt2_xl();
    let rates = [0.5, 2.0, 6.0, 12.0];
    let mut sim = ServingSim::new(sweep_cfg())
        .cluster(2, |_| MemNode::tight())
        .scheduling(Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: Some(32),
            preempt: true,
        })
        .kv_block(64);
    assert!(sim.try_clone().is_some(), "MemNode clones");
    let parallel = sim.sweep_rates(&model, &rates);
    let serial: Vec<ServingReport> = rates
        .iter()
        .map(|&rate| {
            let mut cfg = sweep_cfg();
            cfg.arrival_rate_hz = rate;
            ServingSim::new(cfg)
                .cluster(2, |_| MemNode::tight())
                .scheduling(Scheduling::IterationLevel {
                    max_batch: 8,
                    prefill_chunk: Some(32),
                    preempt: true,
                })
                .kv_block(64)
                .run(&model)
        })
        .collect();
    assert_eq!(parallel, serial);
}

/// A backend without `clone_box` falls back to serial probing on the
/// original engine — same reports, same order.
#[test]
fn sweep_rates_serial_fallback_without_clone() {
    let model = ModelConfig::gpt2_xl();
    let rates = [1.0, 4.0];
    let build = |node_clones: bool| {
        let mut sim = ServingSim::new(sweep_cfg()).scheduling(Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: None,
            preempt: false,
        });
        if node_clones {
            sim = sim.replica(MemNode::tight());
        } else {
            sim = sim.replica(Uncloneable(MemNode::tight()));
        }
        sim
    };
    let mut fallback = build(false);
    assert!(fallback.try_clone().is_none(), "Uncloneable must not clone");
    let a = fallback.sweep_rates(&model, &rates);
    let b = build(true).sweep_rates(&model, &rates);
    assert_eq!(a, b, "serial fallback and parallel path agree");
    // The sweep restores the configured rate either way.
    let direct = build(false).run(&model);
    let after = fallback.run(&model);
    assert_eq!(direct, after, "sweep must not perturb the engine");
}

// ---------------------------------------------------------------------
// Divergence guard
// ---------------------------------------------------------------------

/// A hopeless overload with a tiny divergence bound aborts early: the
/// report covers only the completed prefix, says so via `diverged`,
/// and is never `stable`.
#[test]
fn divergence_guard_aborts_hopeless_overload() {
    let model = ModelConfig::gpt2_xl();
    let cfg = ServingConfig {
        arrival_rate_hz: 500.0, // far beyond one MemNode's capacity
        requests: 400,
        seed: 7,
        mix: vec![RequestClass::new(RequestShape::new(128, 64), 1.0)],
        workflows: vec![],
        arrivals: Default::default(),
    };
    let full = ServingSim::new(cfg.clone())
        .replica(MemNode::tight())
        .scheduling(Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: None,
            preempt: false,
        })
        .run(&model);
    assert_eq!(full.completed, 400, "no guard: the run completes");
    assert!(!full.diverged);

    let aborted = ServingSim::new(cfg)
        .replica(MemNode::tight())
        .scheduling(Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: None,
            preempt: false,
        })
        .divergence_depth(Some(32))
        .run(&model);
    assert!(aborted.diverged, "queue depth blows through the bound");
    assert!(aborted.completed < 400, "only the prefix is simulated");
    assert!(!aborted.stable(), "a diverged report is never stable");
}

/// The satellite regression: the early-abort must not move the rate a
/// bisection returns. Probes that abort were exactly the probes that
/// failed the stability predicate anyway.
#[test]
fn sustainable_rate_unchanged_by_divergence_guard() {
    let model = ModelConfig::gpt2_xl();
    let build = || {
        ServingSim::new(ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 80,
            seed: 0xBEEF,
            mix: vec![RequestClass::new(RequestShape::new(64, 32), 1.0)],
            workflows: vec![],
            arrivals: Default::default(),
        })
        .replica(MemNode::tight())
        .scheduling(Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: None,
            preempt: false,
        })
    };
    // Guard off everywhere — every probe simulates its full horizon.
    let exhaustive = build()
        .divergence_depth(None)
        .sustainable_rate(&model, 0.05, 64.0);
    // Default: the automatic in-probe guard may abort hopeless probes.
    let guarded = build().sustainable_rate(&model, 0.05, 64.0);
    assert_eq!(
        exhaustive, guarded,
        "the divergence guard must not change the bisection result"
    );
    assert!(exhaustive > 0.05);
}

// ---------------------------------------------------------------------
// Arrival shapes: the pluggable processes obey the same core contract
// ---------------------------------------------------------------------

/// One representative of each [`ArrivalSpec`] variant, parameterized so
/// the non-Poisson shapes actually modulate (visible bursts, several
/// cycles inside a 40-request run).
fn arrival_specs() -> Vec<ArrivalSpec> {
    vec![
        ArrivalSpec::Poisson,
        ArrivalSpec::diurnal(0.6, 20.0),
        ArrivalSpec::mmpp(6.0, 8.0, 8.0),
        ArrivalSpec::multi_tenant(3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The arrivals lift must not depend on the core: for every
    /// traffic shape, seed, rate, and mix, the event-driven and
    /// step-scan cores replay the identical merged arrival stream and
    /// produce bit-identical reports — including the new burst and
    /// per-tenant columns.
    #[test]
    fn arrival_shapes_bit_identical_on_both_cores(
        seed in any::<u64>(),
        rate in prop::sample::select(vec![2.0f64, 6.0]),
        mix_i in 0usize..3,
        spec_i in 0usize..4,
        preempt in any::<bool>(),
    ) {
        let cfg = ServingConfig {
            arrival_rate_hz: rate,
            requests: 40,
            seed,
            mix: mixes()[mix_i].clone(),
            workflows: vec![],
            arrivals: arrival_specs()[spec_i].clone(),
        };
        let model = ModelConfig::gpt2_xl();
        let event = build(&cfg, 2, 8, Some(32), preempt, true, 64,
                          CoreMode::EventDriven).run(&model);
        let scan = build(&cfg, 2, 8, Some(32), preempt, true, 64,
                         CoreMode::StepScan).run(&model);
        prop_assert_eq!(event, scan);
    }
}

/// Workflow mode crossed with every arrival shape: DAG instances drawn
/// off a diurnal/MMPP/multi-tenant stream (children inherit the root's
/// tenant and burst attribution) still replay bit-identically on both
/// cores.
#[test]
fn workflow_mix_bit_identical_on_both_cores_across_arrival_shapes() {
    let model = ModelConfig::gpt2_xl();
    let templates = vec![
        WorkflowTemplate::agent_chain(),
        WorkflowTemplate::tool_fanout(),
        WorkflowTemplate::speculative(),
    ];
    for spec in arrival_specs() {
        let cfg = ServingConfig::workflow_mix(3.0, 16, templates.clone()).arrivals(spec.clone());
        let run = |mode: CoreMode| {
            ServingSim::new(cfg.clone())
                .cluster(2, |_| MemNode::tight())
                .scheduling(Scheduling::IterationLevel {
                    max_batch: 8,
                    prefill_chunk: Some(32),
                    preempt: true,
                })
                .kv_block(64)
                .workflow_inheritance(true)
                .core_mode(mode)
                .run(&model)
        };
        assert_eq!(
            run(CoreMode::EventDriven),
            run(CoreMode::StepScan),
            "workflow run diverged across cores under {spec:?}"
        );
    }
}

/// `sweep_rates` keeps its parallel ≡ serial contract when the trace
/// is a multi-tenant merge: every probe rebuilds the merged per-tenant
/// processes from (spec, seed, rate) alone, so cloned engines replay
/// identical streams.
#[test]
fn sweep_rates_parallel_matches_serial_under_multi_tenant() {
    let model = ModelConfig::gpt2_xl();
    let rates = [0.5, 2.0, 6.0];
    let spec = ArrivalSpec::multi_tenant(3);
    let cfg = || sweep_cfg().arrivals(spec.clone());
    let sched = || Scheduling::IterationLevel {
        max_batch: 8,
        prefill_chunk: Some(32),
        preempt: true,
    };
    let mut sim = ServingSim::new(cfg())
        .cluster(2, |_| MemNode::tight())
        .scheduling(sched())
        .kv_block(64);
    assert!(sim.try_clone().is_some(), "MemNode clones");
    let parallel = sim.sweep_rates(&model, &rates);
    let serial: Vec<ServingReport> = rates
        .iter()
        .map(|&rate| {
            ServingSim::new(cfg().with_rate(rate))
                .cluster(2, |_| MemNode::tight())
                .scheduling(sched())
                .kv_block(64)
                .run(&model)
        })
        .collect();
    assert_eq!(parallel, serial);
    for r in &parallel {
        assert_eq!(r.per_tenant.len(), 3, "tenant rows survive the sweep");
    }
}
