//! Disaggregated-cluster regression net.
//!
//! PR 8 teaches the engine replica roles, prefill→decode KV migration,
//! and two-channel DMA. The hard compatibility contract is that none
//! of it exists until asked for: an all-[`ReplicaRole::Unified`]
//! cluster must reproduce the pre-disaggregation engine **bit for
//! bit**, on both cores. This suite pins five whole-report
//! fingerprints captured on the PR 7 engine (request-level FCFS with
//! tie-breaks, a heterogeneous cluster, and an iteration-level grid
//! exercising chunked prefill, preemption, paged KV, and overlapped
//! DMA), re-asserts the historical 166/351 preemption schedules, and
//! closes with the liveness property: every sequence that migrates
//! completes, exactly once per request, identically on both cores.

use ianus::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// The pinned backend (identical to tests/event_core.rs)
// ---------------------------------------------------------------------

/// Analytic node with real capacity pressure — the same backend the
/// fingerprints below were captured with. Do not retune it: every
/// constant participates in the pins.
#[derive(Debug, Clone, Copy)]
struct MemNode {
    kv_bytes: u64,
    host_bytes: u64,
    host_gbps: f64,
}

impl MemNode {
    fn tight() -> Self {
        MemNode {
            kv_bytes: 256 << 20,
            host_bytes: 128 << 20,
            host_gbps: 8.0,
        }
    }
}

impl Backend for MemNode {
    fn name(&self) -> &str {
        "mem node"
    }
    fn service_time(&mut self, _model: &ModelConfig, shape: RequestShape) -> Duration {
        Duration::from_us(20) * shape.input
            + Duration::from_us(150) * shape.output.saturating_sub(1)
    }
    fn fits(&self, _model: &ModelConfig) -> Result<(), CapacityError> {
        Ok(())
    }
    fn prefill_time(&mut self, _model: &ModelConfig, tokens: u64) -> Duration {
        Duration::from_us(20) * tokens.max(1)
    }
    fn decode_time(&mut self, _model: &ModelConfig, past_tokens: u64, batch: u32) -> Duration {
        Duration::from_us(100)
            + Duration::from_us(8) * u64::from(batch.max(1))
            + Duration::from_ns(50) * past_tokens
    }
    fn batch_fits(
        &self,
        model: &ModelConfig,
        batch: &[RequestShape],
    ) -> Result<f64, CapacityError> {
        let kv: u64 = batch
            .iter()
            .map(|r| model.kv_bytes_per_token() * r.total_tokens())
            .sum();
        if kv > self.kv_bytes {
            Err(CapacityError::OutOfMemory {
                required: kv,
                available: self.kv_bytes,
            })
        } else {
            Ok(kv as f64 / self.kv_bytes as f64)
        }
    }
    fn kv_transfer_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        let bytes = ianus::system::capacity::kv_swap_bytes(model, tokens);
        Duration::from_ns_f64(bytes as f64 / self.host_gbps)
    }
    fn host_kv_bytes(&self) -> Option<u64> {
        Some(self.host_bytes)
    }
    fn kv_budget_bytes(&self, _model: &ModelConfig, _widest_input: u64) -> Option<u64> {
        Some(self.kv_bytes)
    }
    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(*self))
    }
}

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

/// Bit-exact fingerprint over the PR 7 report surface. Fields added in
/// PR 8 (`migrations`, `migration_stall`, per-replica roles and in/out
/// counts) are deliberately excluded — they did not exist when the
/// pins were captured — and are asserted separately to be inert.
fn fp(r: &ServingReport) -> String {
    let per_replica: Vec<String> = r
        .per_replica
        .iter()
        .map(|p| {
            format!(
                "{{{:?} {} {:?} {:?}}}",
                p.name, p.completed, p.utilization, p.kv_dma
            )
        })
        .collect();
    format!(
        "{} {:?} {:?} {:?} {:?} {} {:?} {} {} {} {} {} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {:?} {} {:?} {:?} {:?} {:?} {}",
        r.completed,
        r.mean_service,
        r.sojourn,
        r.ttft,
        r.inter_token,
        r.peak_batch,
        r.peak_kv_occupancy,
        r.preemptions,
        r.recomputes,
        r.preempted_requests,
        r.max_preemptions,
        r.host_kv_peak_bytes,
        r.host_kv_peak_occupancy,
        r.kv_dma,
        r.swap_stall,
        r.slo_attainment,
        r.utilization,
        r.throughput_rps,
        r.goodput_rps,
        r.fragmentation,
        r.prefix_share_ratio,
        r.prefix_cache_hits,
        r.ttft_cache_hit,
        r.ttft_cold,
        r.per_class,
        per_replica,
        r.diverged,
    )
}

/// The disaggregation layer must be inert unless roles were assigned.
fn assert_inert(r: &ServingReport) {
    assert_eq!(r.migrations, 0, "all-Unified cluster must not migrate");
    assert_eq!(r.migration_stall, Duration::ZERO);
    for p in &r.per_replica {
        assert_eq!(p.role, ReplicaRole::Unified);
        assert_eq!(p.migrations_in, 0);
        assert_eq!(p.migrations_out, 0);
    }
}

// Whole-report fingerprints captured on the PR 7 engine (commit
// 66befce) with the exact scenarios below. Regenerate only if a later
// PR *intentionally* changes scheduling semantics.
const PIN_A: &str = r#"400 Duration(13660400000) LatencyPercentiles { p50: Duration(7210000000), p95: Duration(48490000000), p99: Duration(48490000000), max: Duration(48490000000) } LatencyPercentiles { p50: Duration(2560000000), p95: Duration(10240000000), p99: Duration(10240000000), max: Duration(10240000000) } LatencyPercentiles { p50: Duration(150000000), p95: Duration(150000000), p99: Duration(150000000), max: Duration(150000000) } 1 0.0 0 0 0 0 0 0.0 Duration(0) Duration(0) 1.0 0.04014159075970234 11.754147978010122 11.754147978010122 0.0 0.0 0 LatencyPercentiles { p50: Duration(0), p95: Duration(0), p99: Duration(0), max: Duration(0) } LatencyPercentiles { p50: Duration(2560000000), p95: Duration(10240000000), p99: Duration(10240000000), max: Duration(10240000000) } [ClassReport { shape: RequestShape { input: 128, output: 32 }, completed: 243, sojourn: LatencyPercentiles { p50: Duration(7210000000), p95: Duration(7210000000), p99: Duration(7210000000), max: Duration(7210000000) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }, ClassReport { shape: RequestShape { input: 256, output: 64 }, completed: 115, sojourn: LatencyPercentiles { p50: Duration(14570000000), p95: Duration(14570000000), p99: Duration(14570000000), max: Duration(14570000000) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }, ClassReport { shape: RequestShape { input: 512, output: 256 }, completed: 42, sojourn: LatencyPercentiles { p50: Duration(48490000000), p95: Duration(48490000000), p99: Duration(48490000000), max: Duration(48490000000) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }] ["{\"mem node\" 100 0.03829148786796355 Duration(0)}", "{\"mem node\" 101 0.038888892438945916 Duration(0)}", "{\"mem node\" 100 0.043011953695932414 Duration(0)}", "{\"mem node\" 99 0.0403740290359675 Duration(0)}"] false"#;

const PIN_B: &str = r#"300 Duration(676369495501) LatencyPercentiles { p50: Duration(7776766426654), p95: Duration(17528467160973), p99: Duration(19270075281971), max: Duration(21179772426384) } LatencyPercentiles { p50: Duration(7044192104269), p95: Duration(17318857563276), p99: Duration(18280700328498), max: Duration(19449573207143) } LatencyPercentiles { p50: Duration(4348129827), p95: Duration(28289755363), p99: Duration(28289755363), max: Duration(28289755363) } 1 0.0 0 0 0 0 0 0.0 Duration(0) Duration(0) 1.0 0.9457017295652793 4.194608431585195 4.194608431585195 0.0 0.0 0 LatencyPercentiles { p50: Duration(0), p95: Duration(0), p99: Duration(0), max: Duration(0) } LatencyPercentiles { p50: Duration(7044192104269), p95: Duration(17318857563276), p99: Duration(18280700328498), max: Duration(19449573207143) } [ClassReport { shape: RequestShape { input: 128, output: 32 }, completed: 180, sojourn: LatencyPercentiles { p50: Duration(6440967311708), p95: Duration(17460829164002), p99: Duration(18393139298714), max: Duration(18470211739710) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }, ClassReport { shape: RequestShape { input: 256, output: 64 }, completed: 86, sojourn: LatencyPercentiles { p50: Duration(8399953012486), p95: Duration(17533687660215), p99: Duration(19470345062061), max: Duration(19886610176078) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }, ClassReport { shape: RequestShape { input: 512, output: 256 }, completed: 34, sojourn: LatencyPercentiles { p50: Duration(9923659535475), p95: Duration(18308052173794), p99: Duration(21179772426384), max: Duration(21179772426384) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }] ["{\"IANUS\" 231 0.9154203078082104 Duration(0)}", "{\"A100 (eager)\" 34 0.9597889002081184 Duration(0)}", "{\"DFX (4-FPGA)\" 35 0.9618959806795089 Duration(0)}"] false"#;

// PIN_C regenerated in PR 9: swap-outs now debit the host pool in
// whole `kv_block` units (block-granular accounting), raising
// host_kv_peak_bytes 80216064 -> 94371840 and host_kv_peak_occupancy
// 0.59765625 -> 0.703125. Every other field is bit-identical to the
// PR 7 capture; swap *timing* still prices raw moved tokens.
const PIN_C: &str = r#"150 Duration(12426284667) LatencyPercentiles { p50: Duration(6129650000), p95: Duration(46667796394), p99: Duration(61080658000), max: Duration(61307184634) } LatencyPercentiles { p50: Duration(2560000000), p95: Duration(10240000000), p99: Duration(10980546394), max: Duration(13522454372) } LatencyPercentiles { p50: Duration(123700000), p95: Duration(145200000), p99: Duration(754650000), max: Duration(47211666000) } 3 1.0 3 0 3 1 94371840 0.703125 Duration(48439296000) Duration(41365596000) 1.0 0.20373942594967082 33.34035055353948 33.34035055353948 0.11973341815078062 0.0 0 LatencyPercentiles { p50: Duration(0), p95: Duration(0), p99: Duration(0), max: Duration(0) } LatencyPercentiles { p50: Duration(2560000000), p95: Duration(10240000000), p99: Duration(10980546394), max: Duration(13522454372) } [ClassReport { shape: RequestShape { input: 128, output: 32 }, completed: 93, sojourn: LatencyPercentiles { p50: Duration(6129650000), p95: Duration(9405932788), p99: Duration(11423250000), max: Duration(25433577376) }, preemptions: 1, recomputes: 0, slo_attainment: 1.0 }, ClassReport { shape: RequestShape { input: 256, output: 64 }, completed: 40, sojourn: LatencyPercentiles { p50: Duration(12828050000), p95: Duration(24562196345), p99: Duration(61307184634), max: Duration(61307184634) }, preemptions: 2, recomputes: 0, slo_attainment: 1.0 }, ClassReport { shape: RequestShape { input: 512, output: 256 }, completed: 17, sojourn: LatencyPercentiles { p50: Duration(45927250000), p95: Duration(53410734000), p99: Duration(61080658000), max: Duration(61080658000) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }] ["{\"mem node\" 111 0.29925615179670445 Duration(0)}", "{\"mem node\" 39 0.10822270010263718 Duration(48439296000)}"] false"#;

const PIN_D: &str = r#"120 Duration(11328963333) LatencyPercentiles { p50: Duration(6129650000), p95: Duration(31949885640), p99: Duration(67802203257), max: Duration(73213516350) } LatencyPercentiles { p50: Duration(2560000000), p95: Duration(17920000000), p99: Duration(30012803257), max: Duration(33786966350) } LatencyPercentiles { p50: Duration(122900000), p95: Duration(155650000), p99: Duration(161150000), max: Duration(29855300000) } 3 0.99920654296875 3 3 3 1 0 0.0 Duration(0) Duration(0) 1.0 0.14884919911898253 13.095185136010945 13.095185136010945 0.0 0.0 0 LatencyPercentiles { p50: Duration(0), p95: Duration(0), p99: Duration(0), max: Duration(0) } LatencyPercentiles { p50: Duration(2560000000), p95: Duration(17920000000), p99: Duration(30012803257), max: Duration(33786966350) } [ClassReport { shape: RequestShape { input: 128, output: 32 }, completed: 91, sojourn: LatencyPercentiles { p50: Duration(6129650000), p95: Duration(15119346873), p99: Duration(23644308683), max: Duration(31949885640) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }, ClassReport { shape: RequestShape { input: 896, output: 64 }, completed: 29, sojourn: LatencyPercentiles { p50: Duration(27644050000), p95: Duration(67802203257), p99: Duration(73213516350), max: Duration(73213516350) }, preemptions: 3, recomputes: 3, slo_attainment: 1.0 }] ["{\"mem node\" 120 0.14884919911898253 Duration(0)}"] false"#;

const PIN_E: &str = r#"150 Duration(28477234000) LatencyPercentiles { p50: Duration(16347534012), p95: Duration(67533650000), p99: Duration(67533650000), max: Duration(82218544708) } LatencyPercentiles { p50: Duration(640000000), p95: Duration(2560000000), p99: Duration(2560000000), max: Duration(17244894708) } LatencyPercentiles { p50: Duration(117700000), p95: Duration(136350000), p99: Duration(139200000), max: Duration(1405150000) } 3 0.8756103515625 0 0 0 0 0 0.0 Duration(0) Duration(0) 1.0 0.23478419575488851 24.977006377969623 24.977006377969623 0.0 0.0 0 LatencyPercentiles { p50: Duration(0), p95: Duration(0), p99: Duration(0), max: Duration(0) } LatencyPercentiles { p50: Duration(640000000), p95: Duration(2560000000), p99: Duration(2560000000), max: Duration(17244894708) } [ClassReport { shape: RequestShape { input: 32, output: 128 }, completed: 79, sojourn: LatencyPercentiles { p50: Duration(14959250000), p95: Duration(14959250000), p99: Duration(16543000000), max: Duration(17815734464) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }, ClassReport { shape: RequestShape { input: 64, output: 256 }, completed: 47, sojourn: LatencyPercentiles { p50: Duration(31255250000), p95: Duration(32669950000), p99: Duration(33345050000), max: Duration(33345050000) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }, ClassReport { shape: RequestShape { input: 128, output: 512 }, completed: 24, sojourn: LatencyPercentiles { p50: Duration(67533650000), p95: Duration(67533650000), p99: Duration(82218544708), max: Duration(82218544708) }, preemptions: 0, recomputes: 0, slo_attainment: 1.0 }] ["{\"mem node\" 87 0.40573462578214714 Duration(0)}", "{\"mem node\" 46 0.2072293763787766 Duration(0)}", "{\"mem node\" 17 0.0913885851037417 Duration(0)}"] false"#;

// ---------------------------------------------------------------------
// All-Unified clusters reproduce the PR 7 engine bit for bit
// ---------------------------------------------------------------------

/// Request-level FCFS over four identical replicas: the heaped
/// dispatch argmin must reproduce the linear scan's tie-breaks (lowest
/// index wins on equal free-times) exactly.
#[test]
fn request_level_fcfs_tiebreaks_pinned() {
    let r = ServingSim::new(ServingConfig::interactive(12.0, 400))
        .cluster(4, |_| MemNode::tight())
        .dispatch(DispatchPolicy::FcfsSingleQueue)
        .run(&ModelConfig::gpt2_xl());
    assert_eq!(fp(&r), PIN_A);
    assert_inert(&r);
}

/// Request-level FCFS over a heterogeneous cluster (IANUS + A100 +
/// DFX): different service times make the heap ordering non-trivial.
#[test]
fn request_level_heterogeneous_pinned() {
    let r = ServingSim::new(ServingConfig::interactive(6.0, 300))
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .replica(GpuModel::a100())
        .replica(DfxModel::four_fpga())
        .dispatch(DispatchPolicy::FcfsSingleQueue)
        .run(&ModelConfig::gpt2_xl());
    assert_eq!(fp(&r), PIN_B);
    assert_inert(&r);
}

/// Iteration-level grid pins, replayed on both cores: chunked prefill
/// with preemption, paged KV, and overlapped DMA (C); whole-prompt
/// prefill with recompute-fallback preemptions (D); and a no-preempt
/// decode-heavy spread (E). The two-channel DMA plumbing must collapse
/// to the historical single-lane arithmetic everywhere here.
#[test]
fn iteration_level_pins_hold_on_both_cores() {
    let model = ModelConfig::gpt2_xl();
    for mode in [CoreMode::EventDriven, CoreMode::StepScan] {
        let c = ServingSim::new(ServingConfig::interactive(40.0, 150))
            .cluster(2, |_| MemNode::tight())
            .scheduling(Scheduling::IterationLevel {
                max_batch: 8,
                prefill_chunk: Some(32),
                preempt: true,
            })
            .overlap_dma(true)
            .kv_block(64)
            .core_mode(mode)
            .run(&model);
        assert_eq!(fp(&c), PIN_C, "pin C, {mode:?}");
        assert_inert(&c);

        let d = ServingSim::new(ServingConfig::long_prompt(16.0, 120))
            .cluster(1, |_| MemNode {
                kv_bytes: 512 << 20,
                ..MemNode::tight()
            })
            .scheduling(Scheduling::IterationLevel {
                max_batch: 8,
                prefill_chunk: None,
                preempt: true,
            })
            .core_mode(mode)
            .run(&model);
        assert_eq!(fp(&d), PIN_D, "pin D, {mode:?}");
        assert_inert(&d);

        let e = ServingSim::new(ServingConfig::decode_heavy(30.0, 150))
            .cluster(3, |_| MemNode::tight())
            .scheduling(Scheduling::IterationLevel {
                max_batch: 4,
                prefill_chunk: Some(64),
                preempt: false,
            })
            .overlap_dma(true)
            .core_mode(mode)
            .run(&model);
        assert_eq!(fp(&e), PIN_E, "pin E, {mode:?}");
        assert_inert(&e);
    }
}

/// The historical 166-preemption schedule survives the role/migration
/// plumbing, on both cores.
#[test]
fn pinned_preemption_scenario_still_166() {
    let shape = RequestShape::new(512, 512);
    let cfg = ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 120,
        seed: 0x5EED,
        mix: vec![
            RequestClass::new(shape, 0.5),
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    };
    let run = |mode| {
        ServingSim::new(cfg.clone())
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 32,
                prefill_chunk: Some(128),
                preempt: true,
            })
            .core_mode(mode)
            .run(&ModelConfig::gpt2_xl())
    };
    let event = run(CoreMode::EventDriven);
    assert_eq!(event.preemptions, 166, "the pinned schedule");
    assert_inert(&event);
    assert_eq!(event, run(CoreMode::StepScan));
}

/// Likewise the 351-preemption paged schedule.
#[test]
fn pinned_paged_scenario_still_351() {
    let run = |mode| {
        ServingSim::new(ServingConfig::shared_prefix(8.0, 200))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 48,
                prefill_chunk: Some(128),
                preempt: true,
            })
            .kv_block(64)
            .core_mode(mode)
            .run(&ModelConfig::gpt2_xl())
    };
    let event = run(CoreMode::EventDriven);
    assert_eq!(event.preemptions, 351, "the pinned paged schedule");
    assert_inert(&event);
    assert_eq!(event, run(CoreMode::StepScan));
}

// ---------------------------------------------------------------------
// Migration liveness
// ---------------------------------------------------------------------

fn mixes() -> Vec<Vec<RequestClass>> {
    let small = RequestShape::new(64, 32);
    let big = RequestShape::new(128, 64);
    let slo = Slo::new(Duration::from_secs_f64(30.0), Duration::from_ms(100));
    vec![
        vec![RequestClass::new(big, 1.0)],
        vec![
            RequestClass::new(small, 0.5).with_slo(slo),
            RequestClass::new(big, 0.5).with_priority(Priority::Batch),
        ],
        vec![
            RequestClass::new(small, 0.3),
            RequestClass::new(big, 0.7).with_shared_prefix(48),
        ],
    ]
}

#[allow(clippy::too_many_arguments)] // mirrors the proptest grid axes
fn build_disagg(
    cfg: &ServingConfig,
    prefill: usize,
    decode: usize,
    chunk: Option<u64>,
    preempt: bool,
    overlap: bool,
    kv_block: u64,
    mode: CoreMode,
) -> ServingSim {
    ServingSim::new(cfg.clone())
        .disaggregated(
            DisaggregationConfig::by_count(prefill, decode),
            |_| MemNode::tight(),
            |_| MemNode::tight(),
        )
        .scheduling(Scheduling::IterationLevel {
            max_batch: 8,
            prefill_chunk: chunk,
            preempt,
        })
        .overlap_dma(overlap)
        .kv_block(kv_block)
        .core_mode(mode)
}

proptest! {
    // Each case is two full disaggregated runs (event + scan).
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Liveness: under any seed, mix, KV accounting, and DMA overlap
    /// setting, every request admitted to a prefill replica migrates
    /// exactly once, lands on a decode replica, and runs to
    /// completion — and the whole schedule is core-independent.
    #[test]
    fn migrated_sequences_always_complete(
        seed in any::<u64>(),
        rate in prop::sample::select(vec![2.0f64, 6.0]),
        mix_i in 0usize..3,
        prefill in 1usize..3,
        decode in 1usize..4,
        chunk in prop::sample::select(vec![None, Some(32u64)]),
        preempt in any::<bool>(),
        overlap in any::<bool>(),
        kv_block in prop::sample::select(vec![0u64, 64]),
    ) {
        let cfg = ServingConfig {
            arrival_rate_hz: rate,
            requests: 40,
            seed,
            mix: mixes()[mix_i].clone(),
            workflows: vec![],
            arrivals: Default::default(),
        };
        let model = ModelConfig::gpt2_xl();
        let event = build_disagg(&cfg, prefill, decode, chunk, preempt, overlap, kv_block,
                                 CoreMode::EventDriven).run(&model);
        let scan = build_disagg(&cfg, prefill, decode, chunk, preempt, overlap, kv_block,
                                CoreMode::StepScan).run(&model);

        // Every request completes, and every request migrated exactly
        // once on its way to a decode replica.
        prop_assert_eq!(event.completed, 40);
        prop_assert_eq!(event.migrations, 40);

        // Handoff bookkeeping balances: prefill replicas only emit,
        // decode replicas only receive, and every emitted sequence
        // finished on the decode side.
        let mut out_total = 0;
        let mut in_total = 0;
        for p in &event.per_replica {
            match p.role {
                ReplicaRole::PrefillOnly => {
                    prop_assert_eq!(p.migrations_in, 0);
                    prop_assert_eq!(p.completed, 0);
                    out_total += p.migrations_out;
                }
                ReplicaRole::DecodeOnly => {
                    prop_assert_eq!(p.migrations_out, 0);
                    in_total += p.migrations_in;
                }
                ReplicaRole::Unified => prop_assert!(false, "no Unified replica here"),
            }
        }
        prop_assert_eq!(out_total, 40);
        prop_assert_eq!(in_total, 40);
        let decode_completed: u64 = event
            .per_replica
            .iter()
            .filter(|p| p.role == ReplicaRole::DecodeOnly)
            .map(|p| p.completed)
            .sum();
        prop_assert_eq!(decode_completed, 40);

        // And none of it depends on which core ran the schedule.
        prop_assert_eq!(event, scan);
    }
}

/// The migration target policy is pluggable: `FreestKvMigration` picks
/// the decode replica with the most free KV, `LeastLoadedMigration`
/// (the default) the one with the fewest resident sequences. Both must
/// preserve liveness; under asymmetric decode capacity they produce
/// different placements.
#[test]
fn migration_policies_preserve_liveness() {
    let cfg = ServingConfig {
        arrival_rate_hz: 6.0,
        requests: 80,
        seed: 0xD15A,
        mix: vec![RequestClass::new(RequestShape::new(128, 64), 1.0)],
        workflows: vec![],
        arrivals: Default::default(),
    };
    // Decode replica 1 has twice the KV of replica 2: under paged
    // accounting (Freest sees free *blocks*; in contiguous mode it
    // degrades to least-loaded order) Freest prefers it even when both
    // hold equally many sequences.
    let build = || {
        ServingSim::new(cfg.clone())
            .replica_with_role(MemNode::tight(), ReplicaRole::PrefillOnly)
            .replica_with_role(
                MemNode {
                    kv_bytes: 512 << 20,
                    ..MemNode::tight()
                },
                ReplicaRole::DecodeOnly,
            )
            .replica_with_role(MemNode::tight(), ReplicaRole::DecodeOnly)
            .scheduling(Scheduling::IterationLevel {
                max_batch: 8,
                prefill_chunk: None,
                preempt: true,
            })
            .kv_block(64)
    };
    let model = ModelConfig::gpt2_xl();
    let least = build().migration(LeastLoadedMigration).run(&model);
    let freest = build().migration(FreestKvMigration).run(&model);
    for r in [&least, &freest] {
        assert_eq!(r.completed, 80);
        assert_eq!(r.migrations, 80);
    }
    let in_counts =
        |r: &ServingReport| -> Vec<u64> { r.per_replica.iter().map(|p| p.migrations_in).collect() };
    assert_ne!(
        in_counts(&least),
        in_counts(&freest),
        "asymmetric KV must separate the two policies"
    );
    assert!(
        in_counts(&freest)[1] > in_counts(&freest)[2],
        "Freest must favor the big-KV decode replica"
    );
}
