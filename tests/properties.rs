//! Workspace-level property tests: invariants that must hold across the
//! whole stack for arbitrary workloads and configurations.

use ianus::prelude::*;
use proptest::prelude::*;

fn gpt2_models() -> impl Strategy<Value = ModelConfig> {
    prop::sample::select(ModelConfig::gpt2_family().to_vec())
}

proptest! {
    // End-to-end simulations are not free; keep case counts modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn latency_monotone_in_output_tokens(
        model in gpt2_models(),
        input in prop::sample::select(vec![32u64, 64, 128]),
        out_lo in 1u64..16,
        extra in 1u64..16,
    ) {
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let a = sys.run_request(&model, RequestShape::new(input, out_lo)).total;
        let b = sys.run_request(&model, RequestShape::new(input, out_lo + extra)).total;
        prop_assert!(b > a, "{} vs {}", a, b);
    }

    #[test]
    fn summarization_latency_monotone_in_input(
        model in gpt2_models(),
        lo in prop::sample::select(vec![32u64, 64, 128, 256]),
    ) {
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let a = sys.run_stage(&model, &Stage::Summarization { tokens: lo }).latency;
        let b = sys.run_stage(&model, &Stage::Summarization { tokens: lo * 2 }).latency;
        prop_assert!(b > a);
    }

    #[test]
    fn ianus_never_slower_than_npu_mem_generation(
        model in gpt2_models(),
        past in prop::sample::select(vec![16u64, 64, 256, 512]),
    ) {
        let stage = Stage::Generation { past_tokens: past };
        let i = IanusSystem::new(SystemConfig::ianus()).run_stage(&model, &stage).latency;
        let n = IanusSystem::new(SystemConfig::npu_mem()).run_stage(&model, &stage).latency;
        prop_assert!(i <= n, "IANUS {} vs NPU-MEM {}", i, n);
    }

    #[test]
    fn adaptive_never_worse_than_both_forced_mappings(
        model in gpt2_models(),
        tokens in prop::sample::select(vec![2u64, 4, 8, 16, 32]),
    ) {
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let adaptive = sys.run_fc_microbench(&model, tokens, FcMapping::Adaptive).latency;
        let mu = sys.run_fc_microbench(&model, tokens, FcMapping::MatrixUnit).latency;
        let pim = sys.run_fc_microbench(&model, tokens, FcMapping::Pim).latency;
        // Algorithm 1 decides per FC from compile-time analytic
        // estimates; near the PIM/MU crossover (where the two forced
        // mappings are within ~15% of each other) those estimates can
        // diverge from the simulated schedule and pick the slightly
        // slower unit, so the bound tolerates that skew.
        let best = mu.min(pim);
        prop_assert!(
            adaptive.as_ns_f64() <= best.as_ns_f64() * 1.15,
            "adaptive {} vs best {}",
            adaptive,
            best
        );
    }

    #[test]
    fn breakdown_classes_bound_total_busy(
        model in gpt2_models(),
        past in prop::sample::select(vec![32u64, 128]),
    ) {
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let s = sys.run_stage(&model, &Stage::Generation { past_tokens: past });
        // Busy time summed over classes must be at least the makespan of
        // one unit (something ran) and each class is non-negative.
        prop_assert!(s.breakdown.total().as_ns_f64() > 0.0);
        for class in OpClass::ALL {
            prop_assert!(s.breakdown.get(class).as_ns_f64() >= 0.0);
        }
    }

    #[test]
    fn energy_components_scale_with_work(
        model in gpt2_models(),
        past in prop::sample::select(vec![16u64, 64]),
    ) {
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let one = sys.run_stage(&model, &Stage::Generation { past_tokens: past }).energy;
        // Same stage twice = exactly double the energy (determinism +
        // additivity).
        let mut total = one;
        total.merge(&one);
        prop_assert!((total.total_pj() - 2.0 * one.total_pj()).abs() < 1e-6);
        prop_assert!(one.pim_pj > 0.0);
    }

    #[test]
    fn devices_reduce_latency(
        devices in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let model = ModelConfig::gpt_6_7b();
        let req = RequestShape::new(128, 8);
        let base = DeviceGroup::new(SystemConfig::ianus(), devices)
            .run_request(&model, req).total;
        let more = DeviceGroup::new(SystemConfig::ianus(), devices * 2)
            .run_request(&model, req).total;
        prop_assert!(more < base);
    }

    #[test]
    fn iteration_admission_never_violates_kv_residency(
        seed in 0u64..1000,
        rate in prop::sample::select(vec![2.0f64, 8.0, 40.0]),
        max_batch in 1u32..6,
        shape in prop::sample::select(vec![
            RequestShape::new(128, 32),
            RequestShape::new(256, 128),
            RequestShape::new(512, 512),
        ]),
    ) {
        // Iteration-level serving must (a) finish every request, (b)
        // never exceed the slot cap, and (c) never admit a batch whose
        // projected KV-resident footprint exceeds device memory — the
        // occupancy the engine records is the gate's own accounting, so
        // a value above 1 means an admission slipped past the check.
        let cfg = ServingConfig {
            arrival_rate_hz: rate,
            requests: 30,
            seed,
            mix: vec![RequestClass::new(shape, 1.0)],
            workflows: vec![],
            arrivals: Default::default(),
        };
        let r = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::iteration(max_batch))
            .run(&ModelConfig::gpt2_xl());
        prop_assert_eq!(r.completed, 30);
        prop_assert!(r.peak_batch <= max_batch);
        prop_assert!(
            r.peak_kv_occupancy > 0.0 && r.peak_kv_occupancy <= 1.0,
            "occupancy {} outside (0, 1]", r.peak_kv_occupancy
        );
        // Every admitted batch fits by the same arithmetic the gate uses.
        let backend = IanusSystem::new(SystemConfig::ianus());
        for width in 1..=r.peak_batch {
            let batch = vec![shape; width as usize];
            prop_assert!(
                Backend::batch_fits(&backend, &ModelConfig::gpt2_xl(), &batch).is_ok(),
                "peak batch of {} x {:?} does not fit", width, shape
            );
        }
    }
}

#[test]
fn adaptive_crossover_skew_is_pinned() {
    // The 1.15x tolerance above exists for this measured case: at the
    // PIM/MU crossover (GPT-2 M, 8-token FC microbench) Algorithm 1's
    // compile-time estimates pick PIM while the simulated schedule makes
    // the matrix unit ~13% faster (2.696 ms vs 2.380 ms when pinned).
    // A regression that widens the skew past the tolerance fails here
    // with full context rather than in a sampled property case.
    let model = ModelConfig::gpt2_m();
    let mut sys = IanusSystem::new(SystemConfig::ianus());
    let adaptive = sys
        .run_fc_microbench(&model, 8, FcMapping::Adaptive)
        .latency;
    let mu = sys
        .run_fc_microbench(&model, 8, FcMapping::MatrixUnit)
        .latency;
    let pim = sys.run_fc_microbench(&model, 8, FcMapping::Pim).latency;
    let best = mu.min(pim).as_ns_f64();
    let ratio = adaptive.as_ns_f64() / best;
    assert!(ratio <= 1.15, "adaptive/best ratio {ratio}");
}

#[test]
fn simulation_is_deterministic() {
    let model = ModelConfig::gpt2_l();
    let req = RequestShape::new(128, 16);
    let a = IanusSystem::new(SystemConfig::ianus()).run_request(&model, req);
    let b = IanusSystem::new(SystemConfig::ianus()).run_request(&model, req);
    assert_eq!(a.total, b.total);
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.energy, b.energy);
}
