//! Finite host-memory swap modeling: the host pool is a hard bound,
//! overflow falls back to recompute-based eviction, overlapped DMA
//! hides transfer time behind decode, utilization means compute — and
//! the acceptance pin, a cost-aware victim policy beating pure
//! largest-KV on goodput when the host link is the bottleneck.

use ianus::prelude::*;
use proptest::prelude::*;

/// The pinned preemption scenario (PR 3/4): GPT-2 XL (512,512) drafts,
/// 50/50 interactive/batch tiers, one 8 GB IANUS device, heavy
/// overload — with an SLO on the interactive tier when `slo` is set.
fn scenario(slo: Option<Slo>) -> ServingConfig {
    let shape = RequestShape::new(512, 512);
    let mut interactive = RequestClass::new(shape, 0.5);
    if let Some(slo) = slo {
        interactive = interactive.with_slo(slo);
    }
    ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 120,
        seed: 0x5EED,
        mix: vec![
            interactive,
            RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
        ],
        workflows: vec![],
        arrivals: Default::default(),
    }
}

fn preemptive() -> Scheduling {
    Scheduling::IterationLevel {
        max_batch: 32,
        prefill_chunk: Some(128),
        preempt: true,
    }
}

/// A 1 GiB host pool cannot hold the scenario's ~3.2 GiB of swapped KV:
/// overcommit forces recompute-based evictions, and the pool bound
/// holds exactly (occupancy never exceeds 1).
#[test]
fn finite_pool_forces_recompute_and_stays_bounded() {
    let r = ServingSim::new(scenario(None))
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(preemptive())
        .host_kv_pool(Some(1 << 30))
        .run(&ModelConfig::gpt2_xl());
    assert_eq!(r.completed, 120, "liveness under a tight pool");
    assert!(
        r.recomputes > 0,
        "a 1 GiB pool must force recompute fallbacks"
    );
    assert!(
        r.recomputes < r.preemptions,
        "some evictions still fit the pool and swap"
    );
    assert!(
        r.host_kv_peak_occupancy > 0.5 && r.host_kv_peak_occupancy <= 1.0,
        "pool must be pressured but never overflowed: {}",
        r.host_kv_peak_occupancy
    );
    assert!(r.host_kv_peak_bytes <= 1 << 30);
    // Recompute drops move no bytes: DMA only covers the swapped subset.
    assert!(r.kv_dma.as_secs_f64() > 0.0);
}

/// The swap-accounting bugfix: utilization means *compute*. On a slow
/// (2 GB/s) host link the pinned scenario spends ~90 s stalled on swap
/// DMA under largest-KV eviction; counting that DMA as busy (the old
/// accounting) reads as a compute-saturated replica, while the real
/// compute utilization is far lower.
#[test]
fn utilization_excludes_swap_dma() {
    let mut system = SystemConfig::ianus();
    system.pcie_gbps = 2.0;
    let r = ServingSim::new(scenario(None))
        .replica(IanusSystem::new(system))
        .scheduling(preemptive())
        .policy(SchedulerPolicy::default().with_eviction(LargestKv))
        .run(&ModelConfig::gpt2_xl());
    assert_eq!(r.completed, 120);
    let makespan = r.completed as f64 / r.throughput_rps;
    assert!(
        r.swap_stall.as_secs_f64() > 40.0,
        "slow link must stall heavily: {}",
        r.swap_stall
    );
    // Compute utilization visibly drops once DMA is split out…
    assert!(r.utilization < 0.90, "compute util {}", r.utilization);
    // …while the old DMA-as-busy accounting would have called the
    // replica compute-saturated.
    let old_style = r.utilization + r.kv_dma.as_secs_f64() / makespan;
    assert!(old_style > 0.95, "DMA-inflated util {old_style}");
    // And the per-replica field carries the same DMA total.
    assert_eq!(r.per_replica[0].kv_dma, r.kv_dma);
}

/// Overlapped DMA hides swap transfers behind decode: same scenario,
/// same policy, strictly less compute stall — at no throughput cost.
#[test]
fn overlap_hides_dma_behind_decode() {
    let run = |overlap: bool| {
        ServingSim::new(scenario(None))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(preemptive())
            .overlap_dma(overlap)
            .run(&ModelConfig::gpt2_xl())
    };
    let serial = run(false);
    let overlapped = run(true);
    assert_eq!(serial.completed, 120);
    assert_eq!(overlapped.completed, 120);
    // Serialized: every transfer stalls the clock, by definition.
    assert_eq!(serial.swap_stall, serial.kv_dma);
    // Overlapped: a real fraction of the DMA hides under decode.
    assert!(
        overlapped.swap_stall.as_secs_f64() < 0.7 * overlapped.kv_dma.as_secs_f64(),
        "stall {} vs dma {}",
        overlapped.swap_stall,
        overlapped.kv_dma
    );
    assert!(
        overlapped.swap_stall < serial.swap_stall,
        "overlap must reduce stall: {} vs {}",
        overlapped.swap_stall,
        serial.swap_stall
    );
    assert!(
        overlapped.throughput_rps >= serial.throughput_rps * 0.999,
        "hiding transfers must not cost throughput: {} vs {}",
        overlapped.throughput_rps,
        serial.throughput_rps
    );
}

/// The acceptance pin: on a slow (4 GB/s) host link, the cost-aware
/// bundle — `CheapestEviction` victims with the `Cheapest` mechanism —
/// beats pure largest-KV (swap mechanism) on goodput. Largest-KV pays
/// the biggest possible transfers over the bottleneck link (~46 s of
/// serialized stall blows the interactive ITL SLO); the cost-aware
/// bundle notices recompute is cheaper and avoids the link entirely.
#[test]
fn cost_aware_beats_largest_kv_on_slow_host_link() {
    let slo = Slo::new(Duration::from_secs_f64(60.0), Duration::from_ms(150));
    let mut system = SystemConfig::ianus();
    system.pcie_gbps = 4.0;
    let mut sim = ServingSim::new(scenario(Some(slo)))
        .replica(IanusSystem::new(system))
        .scheduling(preemptive());
    sim.set_policy(SchedulerPolicy::default().with_eviction(LargestKv));
    let largest = sim.run(&ModelConfig::gpt2_xl());
    sim.set_policy(
        SchedulerPolicy::default()
            .with_eviction(CheapestEviction)
            .with_mechanism(EvictionMechanism::Cheapest),
    );
    let cheapest = sim.run(&ModelConfig::gpt2_xl());
    assert_eq!(largest.completed, 120);
    assert_eq!(cheapest.completed, 120);
    assert!(
        cheapest.goodput_rps > 1.3 * largest.goodput_rps,
        "cost-aware goodput {} must clearly beat largest-KV's {}",
        cheapest.goodput_rps,
        largest.goodput_rps
    );
    // Why: the cost-aware bundle recomputes instead of paying the slow
    // link, so it spends (essentially) nothing on swap stall.
    assert!(cheapest.recomputes > 0);
    assert!(cheapest.swap_stall.as_secs_f64() < 1.0);
    assert!(largest.swap_stall.as_secs_f64() > 20.0);
    assert_eq!(largest.recomputes, 0, "32 GiB pool: largest-KV all-swap");
}

/// PR 9 host-pool accounting fix: under paged KV a swap-out debits the
/// pool in whole `kv_block` blocks (the pool holds block-granular
/// pages, not loose tokens), so the peak is a block-byte multiple and
/// at least what raw-token accounting would charge. The contiguous
/// path is untouched — same scenario without `kv_block` reproduces the
/// raw-token peak exactly. Swap *timing* still prices the raw moved
/// tokens in both modes (`kv_dma` is unchanged by the debit fix).
#[test]
fn paged_swap_debits_whole_blocks_contiguous_unchanged() {
    let model = ModelConfig::gpt2_xl();
    let run = |block: u64| {
        ServingSim::new(scenario(None))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(preemptive())
            .host_kv_pool(Some(4 << 30))
            .kv_block(block)
            .run(&model)
    };
    let contiguous = run(0);
    assert!(contiguous.preemptions > 0, "scenario must swap");
    // Raw-token debit: peak is a multiple of per-token swap bytes but
    // (overwhelmingly) not of whole 64-token blocks.
    let token_bytes = ianus::system::capacity::kv_swap_bytes(&model, 1);
    assert_eq!(contiguous.host_kv_peak_bytes % token_bytes, 0);

    let paged = run(64);
    assert!(paged.preemptions > 0, "paged scenario must swap");
    let block_bytes = ianus::system::capacity::kv_swap_bytes(&model, 64);
    assert_eq!(
        paged.host_kv_peak_bytes % block_bytes,
        0,
        "paged pool debit must be block-granular: peak {} vs block {}",
        paged.host_kv_peak_bytes,
        block_bytes
    );
}

fn mechanism_by_index(i: usize) -> EvictionMechanism {
    match i {
        0 => EvictionMechanism::Swap,
        1 => EvictionMechanism::Recompute,
        _ => EvictionMechanism::Cheapest,
    }
}

proptest! {
    // Every case prices a fresh device; keep counts modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The host-pool invariants, across pool sizes, mechanisms, DMA
    /// modes and seeds: occupancy never exceeds the pool, every
    /// eviction resolves (swap-out paired with swap-in, recompute drop
    /// with re-prefill — observable as: every request completes and
    /// the run terminates), recompute counts partition consistently,
    /// and the stall/DMA accounting is coherent.
    #[test]
    fn host_pool_invariants(
        pool_mb in prop::sample::select(vec![512u64, 1024, 2048, 8192]),
        mechanism in 0usize..3,
        overlap in any::<bool>(),
        seed in 0u64..1000,
        rate in prop::sample::select(vec![10.0f64, 30.0]),
    ) {
        let cfg = ServingConfig {
            arrival_rate_hz: rate,
            requests: 24,
            seed,
            mix: vec![
                RequestClass::new(RequestShape::new(512, 512), 0.5),
                RequestClass::new(RequestShape::new(512, 512), 0.5)
                    .with_priority(Priority::Batch),
            ],
            workflows: vec![],
            arrivals: Default::default(),
        };
        let r = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 24,
                prefill_chunk: Some(128),
                preempt: true,
            })
            .policy(SchedulerPolicy::default().with_mechanism(mechanism_by_index(mechanism)))
            .host_kv_pool(Some(pool_mb << 20))
            .overlap_dma(overlap)
            .run(&ModelConfig::gpt2_xl());
        prop_assert_eq!(r.completed, 24);
        // The pool is a hard bound.
        prop_assert!(
            (0.0..=1.0).contains(&r.host_kv_peak_occupancy),
            "host occupancy {} outside [0, 1]", r.host_kv_peak_occupancy
        );
        prop_assert!(r.host_kv_peak_bytes <= pool_mb << 20);
        // Eviction bookkeeping partitions.
        prop_assert!(r.recomputes <= r.preemptions);
        let by_class: u64 = r.per_class.iter().map(|c| c.preemptions).sum();
        prop_assert_eq!(by_class, r.preemptions);
        let rec_by_class: u64 = r.per_class.iter().map(|c| c.recomputes).sum();
        prop_assert_eq!(rec_by_class, r.recomputes);
        // Recompute-only mechanism: nothing swaps, nothing moves.
        if mechanism == 1 {
            prop_assert_eq!(r.recomputes, r.preemptions);
            prop_assert_eq!(r.host_kv_peak_bytes, 0);
            prop_assert_eq!(r.kv_dma.as_ns_f64(), 0.0);
        }
        // Stall is the serialized part of the DMA.
        prop_assert!(r.swap_stall.as_ns_f64() <= r.kv_dma.as_ns_f64() + 1.0);
        if !overlap {
            prop_assert_eq!(r.swap_stall, r.kv_dma);
        }
        // Device-side accounting still holds under every mechanism.
        prop_assert!(
            r.peak_kv_occupancy > 0.0 && r.peak_kv_occupancy < 1.25,
            "device occupancy {}", r.peak_kv_occupancy
        );
    }

    /// Finite-pool runs are seed-stable: same settings, same report.
    #[test]
    fn finite_pool_runs_are_deterministic(
        mechanism in 0usize..3,
        overlap in any::<bool>(),
        seed in 0u64..100,
    ) {
        let cfg = ServingConfig {
            arrival_rate_hz: 30.0,
            requests: 12,
            seed,
            mix: vec![RequestClass::new(RequestShape::new(512, 512), 1.0)],
            workflows: vec![],
            arrivals: Default::default(),
        };
        let run = || {
            ServingSim::new(cfg.clone())
                .replica(IanusSystem::new(SystemConfig::ianus()))
                .scheduling(Scheduling::IterationLevel {
                    max_batch: 16,
                    prefill_chunk: Some(128),
                    preempt: true,
                })
                .policy(SchedulerPolicy::default().with_mechanism(mechanism_by_index(mechanism)))
                .host_kv_pool(Some(1 << 30))
                .overlap_dma(overlap)
                .run(&ModelConfig::gpt2_xl())
        };
        prop_assert_eq!(run(), run());
    }
}
